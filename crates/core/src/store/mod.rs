//! The content-addressed result store, sweep checkpoint manifests, and
//! the dead-letter queue — the persistence layer that turns the sweep
//! engine into a service.
//!
//! Three durable artifacts live here, all built on `dlp_common::json`
//! (emit *and* parse — nothing else in the workspace reads JSON back):
//!
//! * **[`ResultStore`]** — an on-disk cache of cell outcomes keyed by a
//!   128-bit content digest over *every input that can change the
//!   result*: kernel, configuration, record count, derived workload
//!   seed, fault plan, watchdog, retry budget, and the **lowering
//!   fingerprint** (see [`lowering_fingerprint`]). A warm store makes a
//!   repeat sweep O(lookup): the engine executes only cells whose
//!   inputs changed, and the report is bit-identical to a cold run
//!   (enforced by the `store_sweep` tier-1 test and the CI store-smoke
//!   job). Corrupt, truncated, or version-mismatched entries are
//!   treated as misses, never errors.
//! * **[`SweepManifest`]** — an append-only JSONL checkpoint of one
//!   sweep run. The engine writes one line per completed cell, so a
//!   killed process loses only its in-flight cells;
//!   `sweep --resume <manifest>` re-runs the grid executing only the
//!   missing ones.
//! * **The dead-letter queue** ([`DlqRecord`]) — cells that exhausted
//!   their [`crate::SweepPolicy`] retries with a *non-cacheable* failure
//!   (watchdog, unrecoverable fault, internal error) are appended as
//!   fully self-describing records: kernel, mechanism set, grid, timing,
//!   fault plan, seed. `sweep --replay-dlq` reconstructs and re-runs
//!   them with `faults`-style diagnosis.
//!
//! # What is cacheable
//!
//! Only outcomes that are pure functions of the key may enter the
//! store: completed runs ([`crate::CellOutcome::Ran`], including
//! mismatches — wrong answers are deterministic too) and *deterministic
//! rejections* (verifier, capacity, unsupported-feature, malformed-
//! program, invalid-config failures). Watchdog trips, fault-budget
//! exhaustion, internal panics, and soft-timeout failures are **not**
//! cached — they are exactly the outcomes an operator retries, so they
//! go to the dead-letter queue instead. [`cacheable`] is the single
//! arbiter.
//!
//! # Key schema and invalidation
//!
//! The entry digest folds in [`STORE_VERSION`]; the lowering
//! fingerprint folds in [`LOWERING_SCHEMA`] plus the serialized kernel
//! IR and (for MIMD) the assembled program, so editing a kernel or
//! bumping the schema constant invalidates exactly the affected
//! entries. See `OPERATIONS.md` for the operator-facing invalidation
//! rules and runbooks.
//!
//! # Crash consistency
//!
//! As of format version 2 every durable write funnels through
//! [`atomic`]: whole files are replaced via tempfile → `fsync` →
//! rename ([`atomic_write_file`]), appends are sealed lines (content
//! digest prefix, [`seal_line`]) written in one `write_all` and
//! `fdatasync`ed ([`AppendWriter`]). A process killed at *any* instant
//! — the [`CRASHPOINTS`] enumerate the interesting ones, and
//! `cargo xtask chaos` kills at each — leaves a store that resumes to
//! a byte-identical canonical report. Host-I/O faults (short writes,
//! `ENOSPC`/`EIO`, torn tails, bit flips; see [`iofault`]) degrade to
//! misses and recomputes, never wrong results: corrupt bytes can't
//! pass the seal. Concurrent sweeps on one store serialize on an
//! advisory [`lock::StoreLock`], and [`fsck::fsck`] (exposed as
//! `sweep --fsck` / `cargo xtask storeck`) quarantines anything a
//! crash or bit rot left unreadable. `DESIGN.md` §11 states the full
//! contract.

use std::io::{self, BufRead as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dlp_common::crashpoint::CrashSites;
use dlp_common::json::{self, JsonValue};
use dlp_common::{
    CoreParams, DlpError, FaultPlan, FaultRate, FetchParams, GridShape, MemParams, NetParams,
    OpClassLatency, SimStats, Tick, TimingParams,
};
use dlp_kernels::{DlpKernel, MimdTarget};
use serde::{Deserialize, Serialize};
use trips_sim::MechanismSet;

use crate::sweep::CellOutcome;
use crate::ExperimentParams;

pub mod atomic;
pub mod fsck;
pub mod iofault;
pub mod lock;

pub use atomic::{atomic_write_file, seal_line, unseal_line, AppendSites, AppendWriter};
pub use fsck::{fsck, FsckReport};
pub use iofault::IoFaultPlan;
pub use lock::StoreLock;

use iofault::Class;

/// On-disk entry format version. Bump when the entry layout, the key
/// schema, or the meaning of any digested field changes; every older
/// entry then reads as a miss and is recomputed. Version 2 introduced
/// the sealed-line entry format ([`seal_line`]).
pub const STORE_VERSION: u32 = 2;

/// Lowering-fingerprint schema version. Bump when the scheduler's
/// *semantics* change (placement, routing, unroll policy) in a way the
/// fingerprint's inputs cannot see — the fingerprint hashes the
/// scheduler's inputs (kernel IR, mechanisms, grid, timing, effective
/// unroll), not the placement output, so a pure scheduler-code change
/// needs this manual bump to invalidate warm stores.
pub const LOWERING_SCHEMA: u32 = 1;

/// Manifest line-format version. Version 2: header and cell lines are
/// sealed ([`seal_line`]).
pub const MANIFEST_VERSION: u32 = 2;

/// Dead-letter record format version. Version 2: lines are sealed
/// ([`seal_line`]).
pub const DLQ_VERSION: u32 = 2;

/// Every named crashpoint threaded through the store's write paths, in
/// write-path order — the kill matrix `cargo xtask chaos` enumerates.
/// Arm one via `DLP_CRASHPOINT=<name>[:N]` (or `sweep --crashpoint`)
/// to abort the process at its Nth hit.
pub const CRASHPOINTS: &[&str] = &[
    "stamp.tmp",
    "stamp.renamed",
    "manifest.header",
    "entry.tmp",
    "entry.renamed",
    "manifest.append",
    "manifest.synced",
    "dlq.append",
    "dlq.synced",
    "dlq-rewrite.tmp",
    "dlq-rewrite.renamed",
];

const STAMP_SITES: CrashSites = CrashSites { tmp: "stamp.tmp", renamed: "stamp.renamed" };
const ENTRY_SITES: CrashSites = CrashSites { tmp: "entry.tmp", renamed: "entry.renamed" };
const DLQ_REWRITE_SITES: CrashSites =
    CrashSites { tmp: "dlq-rewrite.tmp", renamed: "dlq-rewrite.renamed" };
const MANIFEST_SITES: AppendSites =
    AppendSites { appended: "manifest.append", synced: "manifest.synced" };
const MANIFEST_HEADER_SITES: AppendSites =
    AppendSites { appended: "manifest.header", synced: "manifest.synced" };
const DLQ_SITES: AppendSites = AppendSites { appended: "dlq.append", synced: "dlq.synced" };

// ---------------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------------

/// A 128-bit content digest: two independent 64-bit FNV-1a streams over
/// the same bytes (distinct offset bases), rendered as 32 hex digits.
///
/// Not cryptographic — collision resistance here guards against
/// *accidental* key collisions across a few thousand sweep cells, where
/// 128 well-mixed bits are ample.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u64, pub u64);

impl Digest {
    /// The 32-hex-digit rendering used in file names and JSON.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parse the [`Digest::hex`] rendering.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest(hi, lo))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.hex())
    }
}

/// Incremental FNV-1a/128 hasher (two independent 64-bit lanes).
#[derive(Clone, Copy)]
pub struct Hasher {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// A fresh hasher (standard FNV offset basis on lane A, a distinct
    /// fixed basis on lane B).
    #[must_use]
    pub fn new() -> Self {
        Hasher { a: 0xcbf2_9ce4_8422_2325, b: 0x6c62_272e_07bb_0142 }
    }

    /// Fold bytes into both lanes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte ^ 0x5a)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a labeled field: `label`, `=`, the value, then a `;`
    /// terminator, so adjacent fields can never alias.
    pub fn field(&mut self, label: &str, value: &str) {
        self.update(label.as_bytes());
        self.update(b"=");
        self.update(value.as_bytes());
        self.update(b";");
    }

    /// Finish, producing the digest.
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest(self.a, self.b)
    }
}

// ---------------------------------------------------------------------------
// Fingerprints and keys
// ---------------------------------------------------------------------------

/// Content fingerprint of one *lowering*: everything the scheduler
/// reads to produce a [`crate::PreparedProgram`], plus
/// [`LOWERING_SCHEMA`].
///
/// Inputs digested: the kernel's serialized IR (so editing a kernel
/// invalidates its entries), the mechanism set, grid, timing model, the
/// *effective* unroll (`natural_unroll(..).min(records)`, which is the
/// unroll the scheduler actually picks — two record counts mapping to
/// the same effective unroll share a fingerprint exactly as they share
/// a plan), and for MIMD configurations the assembled per-node program
/// (MIMD lowering bypasses the IR). A failed MIMD assembly digests the
/// error text instead — still deterministic, and such cells fail at
/// prepare time anyway.
#[must_use]
pub fn lowering_fingerprint(
    kernel: &dyn DlpKernel,
    mech: MechanismSet,
    grid: GridShape,
    timing: &TimingParams,
    effective_unroll: usize,
) -> Digest {
    let mut h = Hasher::new();
    h.field("lowering_schema", &LOWERING_SCHEMA.to_string());
    h.field("kernel", kernel.name());
    h.field("mech", &json::to_string(&mech));
    h.field("grid", &json::to_string(&grid));
    h.field("timing", &json::to_string(timing));
    h.field("unroll", &effective_unroll.to_string());
    if mech.local_pc {
        let prog = kernel.mimd_program(MimdTarget { tables_in_l0: mech.l0_data_store });
        match prog {
            Ok(p) => h.field("mimd", &json::to_string(&p)),
            Err(e) => h.field("mimd_err", &e.to_string()),
        }
        h.field("mimd_table", &json::to_string(&kernel.mimd_table_image()));
    } else {
        h.field("ir", &json::to_string(&kernel.ir()));
    }
    h.digest()
}

/// The content address of one sweep cell: the human-readable key fields
/// plus the combined [`StoreKey::digest`] the store files under.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreKey {
    /// Kernel name.
    pub kernel: String,
    /// Configuration display name (audit only — the mechanism set is
    /// already inside [`StoreKey::lowering`]).
    pub config: String,
    /// Records processed.
    pub records: usize,
    /// The *derived* workload seed (see [`crate::sweep::derive_seed`]).
    pub seed: u64,
    /// The lowering fingerprint.
    pub lowering: Digest,
    /// The combined content address (what the entry is filed under).
    pub digest: Digest,
}

impl StoreKey {
    /// Build a key. Besides the named fields, the digest folds in the
    /// fault plan, watchdog override, the policy's retry budget (a cell
    /// that may retry with re-salted faults is a different computation
    /// than a single-attempt one), and [`STORE_VERSION`].
    #[must_use]
    #[allow(clippy::too_many_arguments)] // a key *is* its inputs; a builder would obscure them
    pub fn new(
        kernel: &str,
        config: &str,
        records: usize,
        seed: u64,
        fault: &FaultPlan,
        watchdog: Option<Tick>,
        max_attempts: u32,
        lowering: Digest,
    ) -> StoreKey {
        let mut h = Hasher::new();
        h.field("store_version", &STORE_VERSION.to_string());
        h.field("kernel", kernel);
        h.field("config", config);
        h.field("records", &records.to_string());
        h.field("seed", &seed.to_string());
        h.field("fault", &json::to_string(fault));
        h.field("watchdog", &watchdog.map_or_else(|| "none".to_string(), |t| t.to_string()));
        h.field("max_attempts", &max_attempts.to_string());
        h.field("lowering", &lowering.hex());
        StoreKey {
            kernel: kernel.to_string(),
            config: config.to_string(),
            records,
            seed,
            lowering,
            digest: h.digest(),
        }
    }
}

/// Whether an outcome is a pure function of its [`StoreKey`] and may
/// enter the result store. See the module docs for the taxonomy split;
/// the complement of this predicate is exactly the dead-letter set
/// (plus breaker skips, which never ran at all).
#[must_use]
pub fn cacheable(outcome: &CellOutcome) -> bool {
    match outcome {
        CellOutcome::Ran { .. } => true,
        CellOutcome::Failed { kind, timed_out, .. } => {
            !timed_out
                && matches!(
                    kind.as_str(),
                    "verify"
                        | "capacity-exceeded"
                        | "unsupported"
                        | "malformed-program"
                        | "invalid-config"
                )
        }
        CellOutcome::Skipped { .. } => false,
    }
}

// ---------------------------------------------------------------------------
// Outcome encode/decode
// ---------------------------------------------------------------------------

/// Decode a [`CellOutcome`] from its `dlp_common::json` rendering
/// (struct variants emit bare field objects, so the shape is
/// distinguished by field presence: `stats` → ran, `error` → failed,
/// `reason` → skipped).
#[must_use]
pub fn outcome_from_json(v: &JsonValue) -> Option<CellOutcome> {
    if let Some(stats) = v.get("stats") {
        let mismatch = match v.get("mismatch")? {
            JsonValue::Null => None,
            m => Some(m.as_usize()?),
        };
        return Some(CellOutcome::Ran { stats: stats_from_json(stats)?, mismatch });
    }
    if v.get("error").is_some() {
        return Some(CellOutcome::Failed {
            error: v.get("error")?.as_str()?.to_string(),
            kind: v.get("kind")?.as_str()?.to_string(),
            attempts: u32::try_from(v.get("attempts")?.as_u64()?).ok()?,
            timed_out: v.get("timed_out")?.as_bool()?,
        });
    }
    if v.get("reason").is_some() {
        return Some(CellOutcome::Skipped {
            reason: v.get("reason")?.as_str()?.to_string(),
            failures: u32::try_from(v.get("failures")?.as_u64()?).ok()?,
        });
    }
    None
}

/// Strict field-by-field [`SimStats`] decoder: every counter must be
/// present (an entry written before a counter existed reads as corrupt,
/// i.e. a miss — recomputing beats resurrecting a half-zeroed record).
fn stats_from_json(v: &JsonValue) -> Option<SimStats> {
    let f = |k: &str| v.get(k).and_then(JsonValue::as_u64);
    Some(SimStats {
        ticks: f("ticks")?,
        useful_ops: f("useful_ops")?,
        overhead_ops: f("overhead_ops")?,
        loads: f("loads")?,
        stores: f("stores")?,
        lmw_words: f("lmw_words")?,
        l1_accesses: f("l1_accesses")?,
        l1_misses: f("l1_misses")?,
        smc_accesses: f("smc_accesses")?,
        l0_accesses: f("l0_accesses")?,
        reg_reads: f("reg_reads")?,
        reg_writes: f("reg_writes")?,
        net_msgs: f("net_msgs")?,
        net_hops: f("net_hops")?,
        blocks_fetched: f("blocks_fetched")?,
        revitalizations: f("revitalizations")?,
        iterations: f("iterations")?,
        mimd_fetches: f("mimd_fetches")?,
        mem_stall_node_cycles: f("mem_stall_node_cycles")?,
        faults_injected: f("faults_injected")?,
        fault_retries: f("fault_retries")?,
        fault_stall_ticks: f("fault_stall_ticks")?,
    })
}

fn mech_from_json(v: &JsonValue) -> Option<MechanismSet> {
    let b = |k: &str| v.get(k).and_then(JsonValue::as_bool);
    Some(MechanismSet {
        smc: b("smc")?,
        inst_revitalization: b("inst_revitalization")?,
        operand_revitalization: b("operand_revitalization")?,
        l0_data_store: b("l0_data_store")?,
        local_pc: b("local_pc")?,
    })
}

fn grid_from_json(v: &JsonValue) -> Option<GridShape> {
    let rows = u8::try_from(v.get("rows")?.as_u64()?).ok()?;
    let cols = u8::try_from(v.get("cols")?.as_u64()?).ok()?;
    if rows == 0 || cols == 0 {
        return None;
    }
    Some(GridShape::new(rows, cols))
}

fn timing_from_json(v: &JsonValue) -> Option<TimingParams> {
    let ops = v.get("ops")?;
    let o = |k: &str| ops.get(k).and_then(JsonValue::as_u64);
    let mem = v.get("mem")?;
    let m = |k: &str| mem.get(k).and_then(JsonValue::as_u64);
    let mu = |k: &str| mem.get(k).and_then(JsonValue::as_usize);
    let m32 = |k: &str| mem.get(k).and_then(JsonValue::as_u64).and_then(|x| u32::try_from(x).ok());
    let net = v.get("net")?;
    let fetch = v.get("fetch")?;
    let fe32 =
        |k: &str| fetch.get(k).and_then(JsonValue::as_u64).and_then(|x| u32::try_from(x).ok());
    let core = v.get("core")?;
    let cu = |k: &str| core.get(k).and_then(JsonValue::as_usize);
    let c32 = |k: &str| core.get(k).and_then(JsonValue::as_u64).and_then(|x| u32::try_from(x).ok());
    Some(TimingParams {
        ops: OpClassLatency {
            int_alu: o("int_alu")?,
            int_mul: o("int_mul")?,
            int_div: o("int_div")?,
            fp_add: o("fp_add")?,
            fp_mul: o("fp_mul")?,
            fp_div: o("fp_div")?,
            fp_sqrt: o("fp_sqrt")?,
            mov: o("mov")?,
        },
        mem: MemParams {
            l0_latency: m("l0_latency")?,
            l0_data_bytes: mu("l0_data_bytes")?,
            l1_hit_latency: m("l1_hit_latency")?,
            l1_miss_penalty: m("l1_miss_penalty")?,
            l1_bytes: mu("l1_bytes")?,
            l1_line_bytes: mu("l1_line_bytes")?,
            l1_accesses_per_cycle: m32("l1_accesses_per_cycle")?,
            smc_latency: m("smc_latency")?,
            smc_bank_bytes: mu("smc_bank_bytes")?,
            smc_channel_words_per_cycle: m32("smc_channel_words_per_cycle")?,
            lmw_max_words: m32("lmw_max_words")?,
            store_buffer_entries: mu("store_buffer_entries")?,
            store_drains_per_cycle: m32("store_drains_per_cycle")?,
            dram_latency: m("dram_latency")?,
        },
        net: NetParams {
            hop_ticks: net.get("hop_ticks")?.as_u64()?,
            link_msgs_per_tick: u32::try_from(net.get("link_msgs_per_tick")?.as_u64()?).ok()?,
        },
        fetch: FetchParams {
            insts_per_cycle: fe32("insts_per_cycle")?,
            map_overhead: fetch.get("map_overhead")?.as_u64()?,
            revitalize_delay: fetch.get("revitalize_delay")?.as_u64()?,
            baseline_frames: fe32("baseline_frames")?,
        },
        core: CoreParams {
            rs_slots_per_node: cu("rs_slots_per_node")?,
            baseline_slots_per_node: cu("baseline_slots_per_node")?,
            reg_banks: c32("reg_banks")?,
            reg_reads_per_bank_per_cycle: c32("reg_reads_per_bank_per_cycle")?,
            l0_inst_capacity: cu("l0_inst_capacity")?,
            mimd_regs: cu("mimd_regs")?,
        },
    })
}

fn fault_from_json(v: &JsonValue) -> Option<FaultPlan> {
    let rate = |k: &str| {
        v.get(k).and_then(JsonValue::as_u64).and_then(|x| u32::try_from(x).ok()).map(FaultRate)
    };
    let t = |k: &str| v.get(k).and_then(JsonValue::as_u64);
    Some(FaultPlan {
        noc_drop: rate("noc_drop")?,
        noc_corrupt: rate("noc_corrupt")?,
        dma_stall: rate("dma_stall")?,
        smc_stall: rate("smc_stall")?,
        l1_fill_delay: rate("l1_fill_delay")?,
        operand_flip: rate("operand_flip")?,
        max_retries: u32::try_from(t("max_retries")?).ok()?,
        backoff_ticks: t("backoff_ticks")?,
        backoff_cap: t("backoff_cap")?,
        stall_ticks: t("stall_ticks")?,
        fill_delay_ticks: t("fill_delay_ticks")?,
        salt: t("salt")?,
    })
}

// ---------------------------------------------------------------------------
// The result store
// ---------------------------------------------------------------------------

/// One store entry as written to disk (the `key` block is for audit —
/// lookups trust only the digest, and a digest/filename disagreement
/// reads as corrupt).
#[derive(Serialize, Deserialize)]
struct StoredEntry {
    store_version: u32,
    kernel: String,
    config: String,
    records: usize,
    seed: u64,
    lowering: String,
    digest: String,
    outcome: CellOutcome,
}

/// A content-addressed on-disk cache of sweep-cell outcomes.
///
/// Layout under the root: `entries/<first 2 hex>/<32 hex>.json`, one
/// file per key (the two-digit shard keeps directories small at
/// millions of entries), plus a `STORE_INFO.json` stamp and a `LOCK`
/// file. Writes go through [`atomic_write_file`] (tempfile → `fsync` →
/// rename), so a killed process never leaves a half-written entry a
/// later run could read; entries are sealed lines, so bit corruption
/// can't serve a wrong result. All read failures — I/O, bad seal,
/// parse, version or digest mismatch, missing counters — degrade to a
/// miss; the store can always be deleted wholesale with no correctness
/// impact (see `OPERATIONS.md`). Opening the store acquires the
/// advisory [`StoreLock`], held until the store is dropped, so
/// concurrent sweep *processes* on one root serialize.
///
/// # Examples
///
/// ```no_run
/// use dlp_core::store::{lowering_fingerprint, ResultStore, StoreKey};
/// # fn main() -> std::io::Result<()> {
/// let store = ResultStore::open("dlp-store")?;
/// # let key: StoreKey = unimplemented!();
/// if let Some(outcome) = store.get(&key) {
///     println!("cache hit: {:?}", outcome.stats());
/// }
/// # Ok(())
/// # }
/// ```
pub struct ResultStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Held for the store's lifetime; serializes sweep processes.
    _lock: StoreLock,
}

/// Write (or refresh) the sealed `STORE_INFO.json` stamp under `root`,
/// atomically. Returns whether the stamp was missing or stale and got
/// rewritten. Shared by [`ResultStore::open`] and [`fsck`].
pub(crate) fn write_stamp(root: &Path) -> io::Result<bool> {
    let info = root.join("STORE_INFO.json");
    let payload =
        format!("{{\"store_version\":{STORE_VERSION},\"lowering_schema\":{LOWERING_SCHEMA}}}");
    let stamp = format!("{}\n", seal_line(&payload));
    if std::fs::read_to_string(&info).ok().as_deref() == Some(stamp.as_str()) {
        return Ok(false);
    }
    atomic_write_file(&info, stamp.as_bytes(), STAMP_SITES, Class::Stamp)?;
    Ok(true)
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `root`, acquiring
    /// the advisory store lock (blocking, with a stderr note, while
    /// another process holds it).
    ///
    /// A `STORE_INFO.json` stamp records the [`STORE_VERSION`]; a stamp
    /// from a different version is rewritten (old entries simply stop
    /// matching — their digests embed the old version).
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory tree, taking the lock, or
    /// writing the stamp.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let root = root.into();
        std::fs::create_dir_all(root.join("entries"))?;
        let lock = StoreLock::acquire(&root)?;
        write_stamp(&root)?;
        Ok(ResultStore { root, hits: AtomicU64::new(0), misses: AtomicU64::new(0), _lock: lock })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry file a key is stored under.
    #[must_use]
    pub fn path_of(&self, key: &StoreKey) -> PathBuf {
        let hex = key.digest.hex();
        self.root.join("entries").join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Lookups served from the store so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no (valid) entry.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Look up a key. Every failure mode — absent file, I/O error,
    /// broken seal, parse error, version skew, digest mismatch — is a
    /// miss.
    #[must_use]
    pub fn get(&self, key: &StoreKey) -> Option<CellOutcome> {
        let outcome = self.read_entry(key);
        match outcome {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    fn read_entry(&self, key: &StoreKey) -> Option<CellOutcome> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        let payload = unseal_line(text.trim_end_matches('\n'))?;
        let v = json::parse(payload).ok()?;
        if v.get("store_version")?.as_u64()? != u64::from(STORE_VERSION) {
            return None;
        }
        if v.get("digest")?.as_str()? != key.digest.hex() {
            return None;
        }
        outcome_from_json(v.get("outcome")?)
    }

    /// Insert an outcome, if [`cacheable`]. Returns whether an entry
    /// was written. The write is a sealed line committed through
    /// [`atomic_write_file`], so concurrent writers of the same key
    /// race benignly (identical content), readers never observe a
    /// partial entry, and a kill at any instant leaves either no entry
    /// or a complete durable one.
    ///
    /// # Errors
    ///
    /// I/O errors creating the shard directory or writing the entry
    /// (including faults injected by the [`iofault`] shim).
    pub fn put(&self, key: &StoreKey, outcome: &CellOutcome) -> io::Result<bool> {
        if !cacheable(outcome) {
            return Ok(false);
        }
        let path = self.path_of(key);
        let shard = path.parent().unwrap_or(&self.root).to_path_buf();
        std::fs::create_dir_all(&shard)?;
        let entry = StoredEntry {
            store_version: STORE_VERSION,
            kernel: key.kernel.clone(),
            config: key.config.clone(),
            records: key.records,
            seed: key.seed,
            lowering: key.lowering.hex(),
            digest: key.digest.hex(),
            outcome: outcome.clone(),
        };
        let line = format!("{}\n", seal_line(&json::to_string(&entry)));
        atomic_write_file(&path, line.as_bytes(), ENTRY_SITES, Class::Entry)?;
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Sweep manifests (checkpoint / resume)
// ---------------------------------------------------------------------------

/// One completed cell recorded in a manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestEntry {
    /// What happened.
    pub outcome: CellOutcome,
    /// Host wall-clock the cell took when first executed, ms.
    pub wall_ms: f64,
    /// Attempts spent.
    pub attempts: u32,
}

/// A parsed sweep checkpoint: the grid identity plus every cell
/// recorded so far, indexed by push position.
#[derive(Clone, Debug)]
pub struct SweepManifest {
    /// Digest over the per-cell store digests in push order — a resumed
    /// sweep must present the identical grid.
    pub grid_digest: Digest,
    /// Total cells in the grid.
    pub cells: usize,
    /// Recorded outcomes (`None` where the cell had not completed).
    pub entries: Vec<Option<ManifestEntry>>,
}

impl SweepManifest {
    /// Number of cells with a recorded outcome.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Load a manifest written by [`ManifestWriter`].
    ///
    /// Every line must [`unseal_line`]. The final line of a killed run
    /// may be torn; a seal or parse failure on the *last* line is
    /// tolerated (that cell reads as missing), while malformed interior
    /// lines fail the load — they indicate real corruption, not an
    /// interrupted write.
    ///
    /// # Errors
    ///
    /// [`DlpError::InvalidConfig`] on I/O failure, a bad header, or
    /// interior corruption.
    pub fn load(path: &Path) -> Result<SweepManifest, DlpError> {
        let bad = |detail: String| DlpError::InvalidConfig { detail };
        let text = std::fs::read_to_string(path)
            .map_err(|e| bad(format!("manifest {}: {e}", path.display())))?;
        let mut lines = text.lines().enumerate().peekable();
        let (_, header_line) = lines
            .next()
            .ok_or_else(|| bad(format!("manifest {}: empty file", path.display())))?;
        let header = unseal_line(header_line)
            .ok_or_else(|| bad(format!("manifest {}: broken header seal", path.display())))?;
        let h = json::parse(header)
            .map_err(|e| bad(format!("manifest header: {e}")))?;
        let version = h.get("manifest_version").and_then(JsonValue::as_u64);
        if version != Some(u64::from(MANIFEST_VERSION)) {
            return Err(bad(format!(
                "manifest version {version:?} (this build reads {MANIFEST_VERSION})"
            )));
        }
        let grid_digest = h
            .get("grid_digest")
            .and_then(JsonValue::as_str)
            .and_then(Digest::from_hex)
            .ok_or_else(|| bad("manifest header: bad grid_digest".into()))?;
        let cells = h
            .get("cells")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| bad("manifest header: bad cell count".into()))?;
        let mut entries: Vec<Option<ManifestEntry>> = vec![None; cells];
        while let Some((lineno, line)) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = unseal_line(line).and_then(|p| json::parse(p).ok()).and_then(|v| {
                let cell = v.get("cell")?.as_usize()?;
                let outcome = outcome_from_json(v.get("outcome")?)?;
                let wall_ms = match v.get("wall_ms")? {
                    JsonValue::Null => 0.0,
                    n => n.as_f64()?,
                };
                let attempts = u32::try_from(v.get("attempts")?.as_u64()?).ok()?;
                Some((cell, ManifestEntry { outcome, wall_ms, attempts }))
            });
            match parsed {
                Some((cell, entry)) if cell < cells => entries[cell] = Some(entry),
                Some((cell, _)) => {
                    return Err(bad(format!(
                        "manifest line {}: cell {cell} out of range (grid has {cells})",
                        lineno + 1
                    )))
                }
                // A torn final line is the normal kill signature.
                None if lines.peek().is_none() => break,
                None => {
                    return Err(bad(format!("manifest line {}: unparsable entry", lineno + 1)))
                }
            }
        }
        Ok(SweepManifest { grid_digest, cells, entries })
    }
}

/// Incremental manifest writer: a sealed header line at creation, then
/// one sealed, `fdatasync`ed line per completed cell, so a kill loses
/// at most the in-flight cells and a machine crash can tear at most
/// the final line.
pub struct ManifestWriter {
    file: AppendWriter,
}

impl ManifestWriter {
    /// Create (truncating) a manifest for a grid whose per-cell digests
    /// are `cell_digests`, in push order.
    ///
    /// # Errors
    ///
    /// I/O errors creating the file or writing the header.
    pub fn create(path: &Path, cell_digests: &[Digest]) -> io::Result<ManifestWriter> {
        let file = AppendWriter::create(path, MANIFEST_SITES, Class::Manifest)?;
        let header = format!(
            "{{\"manifest_version\":{MANIFEST_VERSION},\"grid_digest\":\"{}\",\"cells\":{}}}",
            grid_digest(cell_digests).hex(),
            cell_digests.len(),
        );
        file.append_line_at(&header, MANIFEST_HEADER_SITES)?;
        Ok(ManifestWriter { file })
    }

    /// Reopen an existing manifest for appending — the resume path
    /// (the header is already on disk). A torn final line from the
    /// interrupted run is truncated away first, so it can't glue onto
    /// the next append and corrupt an interior line.
    ///
    /// # Errors
    ///
    /// I/O errors opening or repairing the file.
    pub fn append_to(path: &Path) -> io::Result<ManifestWriter> {
        let bytes = std::fs::read(path)?;
        if bytes.last().is_some_and(|&b| b != b'\n') {
            let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(keep as u64)?;
        }
        let file = AppendWriter::append_to(path, MANIFEST_SITES, Class::Manifest)?;
        Ok(ManifestWriter { file })
    }

    /// Append a completed cell (thread-safe; sealed and synced before
    /// returning).
    pub fn append(&self, cell: usize, entry: &ManifestEntry) {
        #[derive(Serialize)]
        struct Line {
            cell: usize,
            attempts: u32,
            wall_ms: f64,
            outcome: CellOutcome,
        }
        let line = json::to_string(&Line {
            cell,
            attempts: entry.attempts,
            wall_ms: entry.wall_ms,
            outcome: entry.outcome.clone(),
        });
        // Checkpointing is best-effort by design: an unwritable
        // manifest must not fail the sweep it is backing up.
        let _ = self.file.append_line(&line);
    }
}

/// The grid-identity digest a manifest pins: the per-cell store digests
/// in push order.
#[must_use]
pub fn grid_digest(cell_digests: &[Digest]) -> Digest {
    let mut h = Hasher::new();
    h.field("manifest_version", &MANIFEST_VERSION.to_string());
    for d in cell_digests {
        h.field("cell", &d.hex());
    }
    h.digest()
}

// ---------------------------------------------------------------------------
// Dead-letter queue
// ---------------------------------------------------------------------------

/// A dead-lettered cell: a self-describing, replayable record of a
/// sweep cell that exhausted its retries with a non-[`cacheable`]
/// failure. Everything needed to reconstruct the cell is inline —
/// mechanism set, grid, timing, fault plan, base seed — so a later
/// `sweep --replay-dlq` needs only the suite kernel by name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DlqRecord {
    /// Record format version.
    pub dlq_version: u32,
    /// Kernel name (must be a suite kernel to replay).
    pub kernel: String,
    /// Configuration display name (audit; the mechanism set governs).
    pub config: String,
    /// The cell's experiment tag.
    pub label: String,
    /// The mechanism set the cell ran on.
    pub mech: MechanismSet,
    /// Grid shape.
    pub grid: GridShape,
    /// Timing model.
    pub timing: TimingParams,
    /// Fault plan (with the cell's own base salt — replay re-salts per
    /// attempt exactly as the original sweep did).
    pub fault: FaultPlan,
    /// The *base* experiment seed (pre-derivation).
    pub base_seed: u64,
    /// Watchdog override, if any.
    pub watchdog: Option<Tick>,
    /// Records processed.
    pub records: usize,
    /// The rendered error that dead-lettered the cell.
    pub error: String,
    /// Its [`DlpError::kind`] tag.
    pub kind: String,
    /// Attempts spent before dead-lettering.
    pub attempts: u32,
    /// Whether the policy's soft timeout stopped further retries.
    pub timed_out: bool,
}

impl DlqRecord {
    /// Decode one JSONL line.
    #[must_use]
    pub fn from_json(v: &JsonValue) -> Option<DlqRecord> {
        if v.get("dlq_version")?.as_u64()? != u64::from(DLQ_VERSION) {
            return None;
        }
        Some(DlqRecord {
            dlq_version: DLQ_VERSION,
            kernel: v.get("kernel")?.as_str()?.to_string(),
            config: v.get("config")?.as_str()?.to_string(),
            label: v.get("label")?.as_str()?.to_string(),
            mech: mech_from_json(v.get("mech")?)?,
            grid: grid_from_json(v.get("grid")?)?,
            timing: timing_from_json(v.get("timing")?)?,
            fault: fault_from_json(v.get("fault")?)?,
            base_seed: v.get("base_seed")?.as_u64()?,
            watchdog: match v.get("watchdog")? {
                JsonValue::Null => None,
                t => Some(t.as_u64()?),
            },
            records: v.get("records")?.as_usize()?,
            error: v.get("error")?.as_str()?.to_string(),
            kind: v.get("kind")?.as_str()?.to_string(),
            attempts: u32::try_from(v.get("attempts")?.as_u64()?).ok()?,
            timed_out: v.get("timed_out")?.as_bool()?,
        })
    }

    /// The [`ExperimentParams`] to replay this record under.
    #[must_use]
    pub fn params(&self) -> ExperimentParams {
        ExperimentParams {
            grid: self.grid,
            timing: self.timing,
            seed: self.base_seed,
            fault: self.fault,
            watchdog: self.watchdog,
        }
    }
}

/// Append-only dead-letter queue writer (sealed JSONL; one synced line
/// per record, so records survive a kill and corruption is detected on
/// load).
pub struct DeadLetterQueue {
    path: PathBuf,
    file: Mutex<Option<AppendWriter>>,
    appended: AtomicU64,
}

impl DeadLetterQueue {
    /// A queue that will append to `path` (the file is created lazily
    /// on the first record, so a clean sweep leaves no empty file).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> DeadLetterQueue {
        DeadLetterQueue { path: path.into(), file: Mutex::new(None), appended: AtomicU64::new(0) }
    }

    /// The queue's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended by this writer so far.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Append one record (thread-safe, sealed, synced; best-effort like
    /// the manifest — an unwritable queue must not fail the sweep).
    pub fn append(&self, record: &DlqRecord) {
        let line = json::to_string(record);
        let mut guard = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_none() {
            *guard = AppendWriter::append_to(&self.path, DLQ_SITES, Class::Dlq).ok();
        }
        if let Some(file) = guard.as_ref() {
            if file.append_line(&line).is_ok() {
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Load every valid record from a dead-letter queue file. Lines that
/// fail to [`unseal_line`] or parse are skipped (a torn final line is
/// the normal kill signature; a flipped bit breaks the seal); a missing
/// file is an empty queue.
#[must_use]
pub fn load_dlq(path: &Path) -> Vec<DlqRecord> {
    let Ok(file) = std::fs::File::open(path) else {
        return Vec::new();
    };
    std::io::BufReader::new(file)
        .lines()
        .map_while(Result::ok)
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| {
            let payload = unseal_line(&l)?;
            json::parse(payload).ok().and_then(|v| DlqRecord::from_json(&v))
        })
        .collect()
}

/// Rewrite a dead-letter queue with the given records (used by replay
/// to drop records that now succeed), atomically — a kill mid-rewrite
/// leaves either the old queue or the new one, never a mixture. An
/// empty set removes the file.
///
/// # Errors
///
/// I/O errors writing or removing the file.
pub fn rewrite_dlq(path: &Path, records: &[DlqRecord]) -> io::Result<()> {
    if records.is_empty() {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    } else {
        let mut out = String::new();
        for r in records {
            out.push_str(&seal_line(&json::to_string(r)));
            out.push('\n');
        }
        atomic_write_file(path, out.as_bytes(), DLQ_REWRITE_SITES, Class::Dlq)
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared fixtures for the store submodules' unit tests.
    use super::*;

    pub(crate) fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("dlp-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    pub(crate) fn sample_key(tag: u64) -> StoreKey {
        StoreKey::new(
            "convert",
            "S-O",
            24,
            tag,
            &FaultPlan::none(),
            None,
            1,
            Digest(7, 9),
        )
    }

    pub(crate) fn ran_outcome() -> CellOutcome {
        CellOutcome::Ran {
            stats: SimStats { ticks: 42, useful_ops: 7, ..SimStats::default() },
            mismatch: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{ran_outcome, sample_key, tmpdir};
    use super::*;
    use crate::MachineConfig;

    #[test]
    fn digest_hex_round_trips() {
        let d = Digest(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        assert_eq!(Digest::from_hex(&d.hex()), Some(d));
        assert_eq!(Digest::from_hex("short"), None);
        assert_eq!(Digest::from_hex(&"z".repeat(32)), None);
    }

    #[test]
    fn keys_separate_every_input() {
        let base = sample_key(1);
        let other_seed = sample_key(2);
        assert_ne!(base.digest, other_seed.digest);
        let other_lowering = StoreKey::new(
            "convert", "S-O", 24, 1, &FaultPlan::none(), None, 1, Digest(7, 10),
        );
        assert_ne!(base.digest, other_lowering.digest);
        let other_watchdog = StoreKey::new(
            "convert", "S-O", 24, 1, &FaultPlan::none(), Some(100), 1, Digest(7, 9),
        );
        assert_ne!(base.digest, other_watchdog.digest);
        let other_attempts = StoreKey::new(
            "convert", "S-O", 24, 1, &FaultPlan::none(), None, 3, Digest(7, 9),
        );
        assert_ne!(base.digest, other_attempts.digest);
        // Pure function of its inputs.
        assert_eq!(base.digest, sample_key(1).digest);
    }

    #[test]
    fn store_round_trips_ran_and_deterministic_failures() {
        let dir = tmpdir("roundtrip");
        let store = ResultStore::open(&dir).expect("open");
        let key = sample_key(1);
        assert_eq!(store.get(&key), None);
        assert!(store.put(&key, &ran_outcome()).expect("put"));
        assert_eq!(store.get(&key), Some(ran_outcome()));

        let vkey = sample_key(2);
        let verify_failure = CellOutcome::Failed {
            error: "verification failed [V0101] ...".into(),
            kind: "verify".into(),
            attempts: 0,
            timed_out: false,
        };
        assert!(store.put(&vkey, &verify_failure).expect("put"));
        assert_eq!(store.get(&vkey), Some(verify_failure));
        assert_eq!(store.hits(), 2);
        assert_eq!(store.misses(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nondeterministic_failures_are_not_cacheable() {
        for kind in ["watchdog", "fault-unrecoverable", "internal"] {
            let outcome = CellOutcome::Failed {
                error: "e".into(),
                kind: kind.into(),
                attempts: 1,
                timed_out: false,
            };
            assert!(!cacheable(&outcome), "{kind} must go to the DLQ, not the store");
        }
        let timed_out = CellOutcome::Failed {
            error: "e".into(),
            kind: "verify".into(),
            attempts: 1,
            timed_out: true,
        };
        assert!(!cacheable(&timed_out), "soft timeouts are host-dependent");
        assert!(!cacheable(&CellOutcome::Skipped { reason: "r".into(), failures: 3 }));
        let dir = tmpdir("nocache");
        let store = ResultStore::open(&dir).expect("open");
        let key = sample_key(3);
        let watchdog = CellOutcome::Failed {
            error: "w".into(),
            kind: "watchdog".into(),
            attempts: 1,
            timed_out: false,
        };
        assert!(!store.put(&key, &watchdog).expect("put"), "refused");
        assert_eq!(store.get(&key), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_misses() {
        let dir = tmpdir("corrupt");
        let store = ResultStore::open(&dir).expect("open");
        let key = sample_key(4);
        assert!(store.put(&key, &ran_outcome()).expect("put"));

        // Garbage content.
        std::fs::write(store.path_of(&key), "{not json").expect("write");
        assert_eq!(store.get(&key), None, "corrupt entry is a miss");

        // A flipped payload byte breaks the seal.
        assert!(store.put(&key, &ran_outcome()).expect("re-put"));
        let text = std::fs::read_to_string(store.path_of(&key)).expect("read");
        std::fs::write(store.path_of(&key), text.replace("\"ticks\":42", "\"ticks\":43"))
            .expect("write");
        assert_eq!(store.get(&key), None, "bit corruption is a miss, never a wrong result");

        // Correctly re-sealed, but the wrong store version.
        assert!(store.put(&key, &ran_outcome()).expect("re-put"));
        let text = std::fs::read_to_string(store.path_of(&key)).expect("read");
        let payload = unseal_line(text.trim_end_matches('\n')).expect("sealed");
        let skewed = payload.replace(
            &format!("\"store_version\":{STORE_VERSION}"),
            &format!("\"store_version\":{}", STORE_VERSION + 1),
        );
        std::fs::write(store.path_of(&key), format!("{}\n", seal_line(&skewed)))
            .expect("write");
        assert_eq!(store.get(&key), None, "version skew is a miss");

        // An entry filed under the wrong digest (e.g. a hand-copied
        // file) must not be served.
        assert!(store.put(&key, &ran_outcome()).expect("re-put"));
        let other = sample_key(5);
        let shard = store.path_of(&other);
        std::fs::create_dir_all(shard.parent().expect("shard")).expect("mkdir");
        std::fs::copy(store.path_of(&key), &shard).expect("copy");
        assert_eq!(store.get(&other), None, "digest mismatch is a miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_json_round_trips_all_variants() {
        let outcomes = [
            ran_outcome(),
            CellOutcome::Ran {
                stats: SimStats::default(),
                mismatch: Some(17),
            },
            CellOutcome::Failed {
                error: "boom \"quoted\"".into(),
                kind: "watchdog".into(),
                attempts: 3,
                timed_out: true,
            },
            CellOutcome::Skipped { reason: "breaker open on S-O".into(), failures: 4 },
        ];
        for outcome in outcomes {
            let v = json::parse(&json::to_string(&outcome)).expect("parses");
            assert_eq!(outcome_from_json(&v), Some(outcome));
        }
    }

    #[test]
    fn dlq_record_round_trips_and_replays_params() {
        let record = DlqRecord {
            dlq_version: DLQ_VERSION,
            kernel: "fft".into(),
            config: "S-O".into(),
            label: "rate=100ppm".into(),
            mech: MachineConfig::SO.mechanisms(),
            grid: GridShape::trips_baseline(),
            timing: TimingParams::default(),
            fault: FaultPlan::none().with_salt(5),
            base_seed: 0xD1_2003,
            watchdog: Some(50_000_000),
            records: 24,
            error: "unrecoverable fault at noc-link (tick 42): 8 retries".into(),
            kind: "fault-unrecoverable".into(),
            attempts: 3,
            timed_out: false,
        };
        let v = json::parse(&json::to_string(&record)).expect("parses");
        let back = DlqRecord::from_json(&v).expect("decodes");
        assert_eq!(back, record);
        let params = back.params();
        assert_eq!(params.seed, 0xD1_2003);
        assert_eq!(params.watchdog, Some(50_000_000));
        assert_eq!(params.fault.salt, 5);
        assert_eq!(params.timing, TimingParams::default());
    }

    #[test]
    fn dlq_file_append_load_rewrite() {
        let dir = tmpdir("dlq");
        let path = dir.join("dlq.jsonl");
        let queue = DeadLetterQueue::new(&path);
        assert!(!path.exists(), "created lazily");
        assert!(load_dlq(&path).is_empty(), "missing file is an empty queue");

        let mut record = DlqRecord {
            dlq_version: DLQ_VERSION,
            kernel: "convert".into(),
            config: "M".into(),
            label: "l".into(),
            mech: MachineConfig::M.mechanisms(),
            grid: GridShape::trips_baseline(),
            timing: TimingParams::default(),
            fault: FaultPlan::none(),
            base_seed: 1,
            watchdog: None,
            records: 8,
            error: "e".into(),
            kind: "watchdog".into(),
            attempts: 1,
            timed_out: false,
        };
        queue.append(&record);
        record.base_seed = 2;
        queue.append(&record);
        assert_eq!(queue.appended(), 2);

        // A torn final line (kill mid-write) is skipped.
        use std::io::Write as _;
        let mut f =
            std::fs::OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "{{\"dlq_version\":1,\"kernel\":\"trunc").expect("write");
        drop(f);
        let loaded = load_dlq(&path);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].base_seed, 2);

        rewrite_dlq(&path, &loaded[1..]).expect("rewrite");
        assert_eq!(load_dlq(&path).len(), 1);
        rewrite_dlq(&path, &[]).expect("rewrite empty");
        assert!(!path.exists(), "empty queue removes the file");
        rewrite_dlq(&path, &[]).expect("idempotent on missing file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trip_tolerates_torn_tail_only() {
        let dir = tmpdir("manifest");
        let path = dir.join("sweep.manifest.jsonl");
        let digests = [Digest(1, 1), Digest(2, 2), Digest(3, 3)];
        let writer = ManifestWriter::create(&path, &digests).expect("create");
        writer.append(0, &ManifestEntry { outcome: ran_outcome(), wall_ms: 1.5, attempts: 1 });
        writer.append(2, &ManifestEntry { outcome: ran_outcome(), wall_ms: 2.5, attempts: 2 });
        drop(writer);

        let m = SweepManifest::load(&path).expect("loads");
        assert_eq!(m.cells, 3);
        assert_eq!(m.grid_digest, grid_digest(&digests));
        assert_eq!(m.completed(), 2);
        assert!(m.entries[1].is_none());
        assert_eq!(m.entries[2].as_ref().map(|e| e.attempts), Some(2));

        // Torn final line: tolerated, reads as missing.
        use std::io::Write as _;
        let mut f =
            std::fs::OpenOptions::new().append(true).open(&path).expect("open");
        write!(f, "{{\"cell\":1,\"atte").expect("write");
        drop(f);
        let m = SweepManifest::load(&path).expect("still loads");
        assert_eq!(m.completed(), 2);

        // Interior corruption: rejected.
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{broken";
        std::fs::write(&path, lines.join("\n")).expect("write");
        assert!(SweepManifest::load(&path).is_err(), "interior corruption must fail");

        // Out-of-range cell index: rejected.
        let writer = ManifestWriter::create(&path, &digests).expect("recreate");
        writer.append(7, &ManifestEntry { outcome: ran_outcome(), wall_ms: 0.0, attempts: 1 });
        drop(writer);
        assert!(SweepManifest::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lowering_fingerprint_separates_inputs() {
        let suite = dlp_kernels::suite();
        let convert =
            suite.iter().find(|k| k.name() == "convert").expect("suite kernel").as_ref();
        let fft = suite.iter().find(|k| k.name() == "fft").expect("suite kernel").as_ref();
        let grid = GridShape::trips_baseline();
        let timing = TimingParams::default();
        let base = lowering_fingerprint(convert, MachineConfig::SO.mechanisms(), grid, &timing, 16);
        assert_eq!(
            base,
            lowering_fingerprint(convert, MachineConfig::SO.mechanisms(), grid, &timing, 16),
            "pure function"
        );
        assert_ne!(
            base,
            lowering_fingerprint(fft, MachineConfig::SO.mechanisms(), grid, &timing, 16),
            "kernel separates"
        );
        assert_ne!(
            base,
            lowering_fingerprint(convert, MachineConfig::S.mechanisms(), grid, &timing, 16),
            "mechanisms separate"
        );
        assert_ne!(
            base,
            lowering_fingerprint(convert, MachineConfig::SO.mechanisms(), grid, &timing, 8),
            "effective unroll separates"
        );
        let mut slow = timing;
        slow.mem.l1_hit_latency += 2;
        assert_ne!(
            base,
            lowering_fingerprint(convert, MachineConfig::SO.mechanisms(), grid, &slow, 16),
            "timing separates"
        );
        // MIMD fingerprints hash the assembled program, not the IR.
        let m = lowering_fingerprint(convert, MachineConfig::M.mechanisms(), grid, &timing, 0);
        let md = lowering_fingerprint(convert, MachineConfig::MD.mechanisms(), grid, &timing, 0);
        assert_ne!(m, md, "MIMD table placement separates");
    }
}
