//! Advisory cross-process locking for a store root.
//!
//! Two sweep processes pointed at one store directory used to interleave
//! freely; now [`super::ResultStore::open`] acquires a [`StoreLock`] on
//! the root's `LOCK` file and holds it until the store is dropped, so
//! concurrent sweeps *serialize*: the second blocks (with a stderr
//! note) until the first finishes, then runs against the warm store the
//! first left behind.
//!
//! Properties:
//!
//! * **OS-level, crash-safe.** The lock is the platform advisory file
//!   lock (`flock`-style via `std::fs::File::lock`), released
//!   automatically when the holding process exits *for any reason* —
//!   a `kill -9` can never leave a stale lock behind.
//! * **Shared within a process.** Handles to the same (canonicalized)
//!   root share one underlying lock through a process-local registry,
//!   so a warm-up store, a sweep's store, and an in-process `fsck` of
//!   the same root never self-deadlock. The lock is *between*
//!   processes; in-process coordination is the `ResultStore`'s own
//!   (already thread-safe) job.
//! * **Advisory.** Tooling that merely *reads* a store (or deletes it
//!   wholesale, which is always safe) does not need the lock.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Weak};

struct Inner {
    file: std::fs::File,
    /// Whether the OS lock has been taken on `file` yet (the registry
    /// may hand out the `Inner` before its first acquirer finishes).
    locked: Mutex<bool>,
}

/// A held advisory lock on a store root. Dropping every clone releases
/// the OS lock (closing the `LOCK` file's descriptor).
pub struct StoreLock(#[allow(dead_code)] Arc<Inner>);

/// Live locks by canonical root, so handles within one process share
/// one OS lock instead of deadlocking against themselves.
static REGISTRY: Mutex<Vec<(PathBuf, Weak<Inner>)>> = Mutex::new(Vec::new());

/// Find or create the process-shared `Inner` for `root` (a fresh one
/// has not taken its OS lock yet; the caller does that under `locked`).
fn shared_inner(root: &Path) -> io::Result<Arc<Inner>> {
    let canon = root.canonicalize()?;
    let mut registry = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    registry.retain(|(_, weak)| weak.strong_count() > 0);
    if let Some(inner) =
        registry.iter().filter(|(p, _)| p == &canon).find_map(|(_, weak)| weak.upgrade())
    {
        return Ok(inner);
    }
    // Append mode, never truncate: another process may hold the lock on
    // this inode, and the file's contents are meaningless anyway.
    let file = std::fs::OpenOptions::new().create(true).append(true).open(canon.join("LOCK"))?;
    let inner = Arc::new(Inner { file, locked: Mutex::new(false) });
    registry.push((canon, Arc::downgrade(&inner)));
    Ok(inner)
}

impl StoreLock {
    /// Acquire the lock on `root` (which must exist), blocking — with a
    /// note on stderr — while another process holds it.
    ///
    /// # Errors
    ///
    /// I/O errors creating the `LOCK` file or taking the OS lock.
    pub fn acquire(root: &Path) -> io::Result<StoreLock> {
        let inner = shared_inner(root)?;
        {
            let mut locked =
                inner.locked.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !*locked {
                match inner.file.try_lock() {
                    Ok(()) => {}
                    Err(std::fs::TryLockError::WouldBlock) => {
                        eprintln!(
                            "store {}: locked by another process; waiting",
                            root.display()
                        );
                        inner.file.lock()?;
                    }
                    Err(std::fs::TryLockError::Error(e)) => return Err(e),
                }
                *locked = true;
            }
        }
        Ok(StoreLock(inner))
    }

    /// Try to acquire the lock on `root` without blocking on another
    /// process. `Ok(None)` means a different process holds it. (If this
    /// process already holds it, the shared handle is returned — the
    /// lock excludes *processes*, not threads.)
    ///
    /// # Errors
    ///
    /// I/O errors creating the `LOCK` file or taking the OS lock.
    pub fn try_acquire(root: &Path) -> io::Result<Option<StoreLock>> {
        let inner = shared_inner(root)?;
        {
            let mut locked =
                inner.locked.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !*locked {
                match inner.file.try_lock() {
                    Ok(()) => *locked = true,
                    Err(std::fs::TryLockError::WouldBlock) => return Ok(None),
                    Err(std::fs::TryLockError::Error(e)) => return Err(e),
                }
            }
        }
        Ok(Some(StoreLock(inner)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dlp-lock-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn same_process_handles_share_the_lock() {
        let dir = tmpdir("share");
        let a = StoreLock::acquire(&dir).expect("first acquire");
        // A second in-process acquire must neither block nor fail.
        let b = StoreLock::acquire(&dir).expect("second acquire");
        let c = StoreLock::try_acquire(&dir).expect("try").expect("in-process sharing");
        drop((a, b, c));
        // Fully released: a fresh acquire takes the OS lock again.
        let _d = StoreLock::acquire(&dir).expect("reacquire");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Cross-process exclusion (the actual contention case) is pinned by
    // the tier-1 `chaos_recovery` test, which holds the lock from a
    // spawned child process and observes `try_acquire` → None here.
}
