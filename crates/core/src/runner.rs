//! The experiment driver: kernel × configuration → verified simulation.

use dlp_common::{DlpError, GridShape, SimStats, TimingParams};
use dlp_kernels::{first_mismatch, memmap, DlpKernel, MimdTarget, Workload};
use serde::{Deserialize, Serialize};
use trips_sched::{replicate_mimd, schedule_dataflow, LayoutPlan, ScheduleOptions};
use trips_sim::Machine;

use crate::MachineConfig;

/// Parameters shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentParams {
    /// Array shape (the paper's baseline: 8×8).
    pub grid: GridShape,
    /// Machine timing.
    pub timing: TimingParams,
    /// Workload seed (fixed for reproducibility).
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            grid: GridShape::trips_baseline(),
            timing: TimingParams::default(),
            seed: 0xD1_2003,
        }
    }
}

/// The result of one verified kernel run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Kernel name.
    pub kernel: String,
    /// Configuration that ran.
    pub config: MachineConfig,
    /// Records processed (excluding unroll padding).
    pub records: usize,
    /// Simulation statistics.
    pub stats: SimStats,
    /// Index of the first output word that differs from the reference,
    /// or `None` when the simulated machine computed everything correctly.
    pub mismatch: Option<usize>,
}

impl RunOutcome {
    /// Whether every output word matched the reference implementation.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.mismatch.is_none()
    }

    /// Cycles per record (the Table 6 `cycles/block` metric).
    #[must_use]
    pub fn cycles_per_record(&self) -> f64 {
        self.stats.cycles() as f64 / self.records.max(1) as f64
    }
}

/// A sensible record count per kernel for the performance experiments,
/// scaled so that heavyweight kernels (dct's 1920-instruction body) finish
/// in reasonable simulation time while lightweight ones amortize their
/// setup. `scale` multiplies the defaults (use 1 for the paper tables,
/// smaller for smoke tests).
#[must_use]
pub fn default_records(kernel_name: &str, scale: usize) -> usize {
    let base = match kernel_name {
        "convert" | "highpassfilter" | "fft" | "lu" => 2048,
        "dct" => 64,
        "md5" | "rijndael" => 256,
        "blowfish" => 512,
        "vertex-skinning" => 256,
        _ => 512, // remaining shaders
    };
    (base * scale.max(1)).max(8)
}

/// Schedule, stage, simulate and verify one kernel on one configuration.
///
/// The driver plays the role of the paper's setup blocks and stream
/// scheduler: it writes the workload into memory, stages the SMC window,
/// loads lookup tables into the L0 store (or their memory image), seeds
/// constant registers, launches the right engine, and finally checks every
/// output word against the kernel's reference implementation.
///
/// # Errors
///
/// Propagates scheduling and simulation failures ([`DlpError`]).
pub fn run_kernel(
    kernel: &dyn DlpKernel,
    config: MachineConfig,
    records: usize,
    params: &ExperimentParams,
) -> Result<RunOutcome, DlpError> {
    let (stats, mismatch) = run_kernel_mech(kernel, config.mechanisms(), records, params)?;
    Ok(RunOutcome { kernel: kernel.name().to_string(), config, records, stats, mismatch })
}

/// As [`run_kernel`], but for an arbitrary coherent
/// [`trips_sim::MechanismSet`] — the entry point the full
/// configuration-space sweep uses. Returns the statistics and the index of
/// the first mismatching output word (if any).
///
/// # Errors
///
/// Propagates scheduling and simulation failures ([`DlpError`]).
pub fn run_kernel_mech(
    kernel: &dyn DlpKernel,
    mech: trips_sim::MechanismSet,
    records: usize,
    params: &ExperimentParams,
) -> Result<(SimStats, Option<usize>), DlpError> {
    let layout = LayoutPlan {
        base_in: memmap::BASE_IN,
        base_out: memmap::BASE_OUT,
        table_base: memmap::TABLE_BASE,
    };
    let ir = kernel.ir();
    let in_words = ir.record_in_words() as usize;
    let out_words = ir.record_out_words() as usize;
    let mut machine = Machine::new(params.grid, params.timing, mech);

    let (padded, stats) = if mech.local_pc {
        let prog = kernel.mimd_program(MimdTarget { tables_in_l0: mech.l0_data_store })?;
        let workload = kernel.workload(records, params.seed);
        stage(&mut machine, &workload, in_words)?;
        let table = kernel.mimd_table_image();
        if !table.is_empty() {
            if mech.l0_data_store {
                machine.load_l0_table(&table)?;
            } else {
                machine.memory_mut().write_words(memmap::TABLE_BASE, &table);
            }
        }
        let progs = replicate_mimd(&prog, params.grid.nodes());
        let stats = machine.run_mimd(&progs, records as u64)?;
        (workload, stats)
    } else {
        let target = trips_sched::TargetConfig {
            smc: mech.smc,
            l0_data_store: mech.l0_data_store,
            operand_revitalization: mech.operand_revitalization,
            dlp_unroll: mech.inst_revitalization,
        };
        let sched = schedule_dataflow(
            &ir,
            params.grid,
            &params.timing,
            target,
            layout,
            ScheduleOptions { max_unroll: Some(records), ..ScheduleOptions::default() },
        )?;
        // Pad the record count to a whole number of unrolled iterations.
        let padded_records = records.div_ceil(sched.unroll) * sched.unroll;
        let workload = kernel.workload(padded_records, params.seed);
        stage(&mut machine, &workload, in_words)?;
        if !sched.table_image.is_empty() {
            if sched.tables_in_l0 {
                machine.load_l0_table(&sched.table_image)?;
            } else {
                machine.memory_mut().write_words(memmap::TABLE_BASE, &sched.table_image);
            }
        }
        for (reg, v) in &sched.const_regs {
            machine.set_reg(*reg, *v);
        }
        let iterations = (padded_records / sched.unroll) as u64;
        let stats = machine.run_dataflow(&sched.block, iterations)?;
        (workload, stats)
    };

    // Verify the unpadded prefix of the output stream.
    let got = machine.memory().read_words(memmap::BASE_OUT, records * out_words);
    let expected = &padded.expected[..records * out_words];
    let mismatch = first_mismatch(kernel.output_kind(), &got, expected);

    Ok((stats, mismatch))
}

/// Write a workload into memory and stage the SMC window.
fn stage(machine: &mut Machine, workload: &Workload, in_words: usize) -> Result<(), DlpError> {
    machine.memory_mut().write_words(memmap::BASE_IN, &workload.input_words);
    if !workload.tex_words.is_empty() {
        machine.memory_mut().write_words(memmap::TEX_BASE, &workload.tex_words);
    }
    if machine.mechanisms().smc {
        let len = (workload.records * in_words) as u64;
        machine.stage_smc(memmap::BASE_IN..memmap::BASE_IN + len)?;
    }
    // Touch the output region so the memory footprint is allocated up
    // front rather than during timing-sensitive simulation.
    let _ = machine.memory().read(memmap::BASE_OUT);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_kernels::suite;

    fn quick(kernel_name: &str, config: MachineConfig) -> RunOutcome {
        let params = ExperimentParams::default();
        let k = suite().into_iter().find(|k| k.name() == kernel_name).expect("kernel exists");
        run_kernel(k.as_ref(), config, 24, &params).expect("run succeeds")
    }

    #[test]
    fn convert_runs_verified_on_baseline_and_s() {
        for config in [MachineConfig::Baseline, MachineConfig::S] {
            let out = quick("convert", config);
            assert!(out.verified(), "convert on {config}: mismatch at {:?}", out.mismatch);
            assert!(out.stats.cycles() > 0);
        }
    }

    #[test]
    fn fft_faster_on_s_than_baseline() {
        // Enough records to amortize the SMC staging DMA — at a handful of
        // records the setup cost rightly dominates (streams are a
        // steady-state mechanism).
        let params = ExperimentParams::default();
        let k = suite().into_iter().find(|k| k.name() == "fft").expect("kernel exists");
        let base = run_kernel(k.as_ref(), MachineConfig::Baseline, 512, &params).unwrap();
        let s = run_kernel(k.as_ref(), MachineConfig::S, 512, &params).unwrap();
        assert!(base.verified() && s.verified());
        assert!(
            s.stats.cycles() < base.stats.cycles(),
            "S {} should beat baseline {}",
            s.stats.cycles(),
            base.stats.cycles()
        );
    }

    #[test]
    fn blowfish_verified_on_mimd_with_l0() {
        let out = quick("blowfish", MachineConfig::MD);
        assert!(out.verified(), "mismatch at {:?}", out.mismatch);
        assert!(out.stats.l0_accesses > 0, "lookups must hit the L0 store");
    }

    #[test]
    fn cycles_per_record_is_positive() {
        let out = quick("lu", MachineConfig::S);
        assert!(out.cycles_per_record() > 0.0);
    }

    #[test]
    fn default_records_scale() {
        assert!(default_records("dct", 1) < default_records("convert", 1));
        assert_eq!(default_records("unknown-kernel", 1), 512);
        assert!(default_records("fft", 2) > default_records("fft", 1));
    }
}
