//! The experiment driver: kernel × configuration → verified simulation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use dlp_common::{DlpError, FaultPlan, GridShape, SimStats, Tick, TimingParams, Value};
use dlp_kernels::{first_mismatch, memmap, DlpKernel, MimdTarget, Workload};
use serde::{Deserialize, Serialize};
use trips_isa::MimdProgram;
use trips_sched::verify::analyze::{self, AnalysisReport};
use trips_sched::{
    replicate_mimd, schedule_dataflow, LayoutPlan, ScheduleOptions, ScheduledKernel,
};
use trips_sim::{EngineArena, Machine, MechanismSet};

use crate::MachineConfig;

/// Parameters shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentParams {
    /// Array shape (the paper's baseline: 8×8).
    pub grid: GridShape,
    /// Machine timing.
    pub timing: TimingParams,
    /// Workload seed (fixed for reproducibility).
    pub seed: u64,
    /// Transient-fault injection plan. The default ([`FaultPlan::none`])
    /// is a strict no-op: the injector stays disabled and every hook
    /// takes the exact fault-free path with zero RNG draws, so
    /// fault-free statistics are bit-identical to builds without the
    /// fault machinery. The fault schedule is seeded from `seed` (plus
    /// the plan's salt), never from wall-clock, so a faulted run is
    /// reproducible across hosts and worker counts.
    pub fault: FaultPlan,
    /// Per-run watchdog override in simulated ticks (`None` keeps the
    /// simulator's generous default). Sweeps over fault rates lower
    /// this so a pathological cell fails fast with
    /// [`DlpError::Watchdog`] instead of stalling the batch.
    pub watchdog: Option<Tick>,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            grid: GridShape::trips_baseline(),
            timing: TimingParams::default(),
            seed: 0xD1_2003,
            fault: FaultPlan::none(),
            watchdog: None,
        }
    }
}

/// The result of one verified kernel run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Kernel name.
    pub kernel: String,
    /// Configuration that ran.
    pub config: MachineConfig,
    /// Records processed (excluding unroll padding).
    pub records: usize,
    /// Simulation statistics.
    pub stats: SimStats,
    /// Index of the first output word that differs from the reference,
    /// or `None` when the simulated machine computed everything correctly.
    pub mismatch: Option<usize>,
}

impl RunOutcome {
    /// Whether every output word matched the reference implementation.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.mismatch.is_none()
    }

    /// Cycles per record (the Table 6 `cycles/block` metric).
    #[must_use]
    pub fn cycles_per_record(&self) -> f64 {
        self.stats.cycles() as f64 / self.records.max(1) as f64
    }
}

/// A sensible record count per kernel for the performance experiments,
/// scaled so that heavyweight kernels (dct's 1920-instruction body) finish
/// in reasonable simulation time while lightweight ones amortize their
/// setup. `scale` multiplies the defaults (use 1 for the paper tables,
/// smaller for smoke tests).
#[must_use]
pub fn default_records(kernel_name: &str, scale: usize) -> usize {
    let base = match kernel_name {
        "convert" | "highpassfilter" | "fft" | "lu" => 2048,
        "dct" => 64,
        "md5" | "rijndael" => 256,
        "blowfish" => 512,
        "vertex-skinning" => 256,
        _ => 512, // remaining shaders
    };
    (base * scale.max(1)).max(8)
}

/// Schedule, stage, simulate and verify one kernel on one configuration.
///
/// The driver plays the role of the paper's setup blocks and stream
/// scheduler: it writes the workload into memory, stages the SMC window,
/// loads lookup tables into the L0 store (or their memory image), seeds
/// constant registers, launches the right engine, and finally checks every
/// output word against the kernel's reference implementation.
///
/// # Errors
///
/// Propagates scheduling and simulation failures ([`DlpError`]).
pub fn run_kernel(
    kernel: &dyn DlpKernel,
    config: MachineConfig,
    records: usize,
    params: &ExperimentParams,
) -> Result<RunOutcome, DlpError> {
    let (stats, mismatch) = run_kernel_mech(kernel, config.mechanisms(), records, params)?;
    Ok(RunOutcome { kernel: kernel.name().to_string(), config, records, stats, mismatch })
}

/// Outcome of one run (or one lane of a batched run): simulation
/// statistics plus the index of the first mismatching output word
/// under verification, if any.
pub type LaneResult = Result<(SimStats, Option<usize>), DlpError>;

/// As [`run_kernel`], but for an arbitrary coherent
/// [`trips_sim::MechanismSet`] — the entry point the full
/// configuration-space sweep uses. Returns the statistics and the index of
/// the first mismatching output word (if any).
///
/// Internally this is [`prepare_kernel`] followed by [`run_prepared`];
/// callers that execute the same kernel/configuration repeatedly (the
/// [`crate::sweep`] engine) keep the [`PreparedProgram`] and skip the
/// scheduling step on later runs.
///
/// # Errors
///
/// Propagates scheduling and simulation failures ([`DlpError`]).
pub fn run_kernel_mech(
    kernel: &dyn DlpKernel,
    mech: trips_sim::MechanismSet,
    records: usize,
    params: &ExperimentParams,
) -> LaneResult {
    let prepared = prepare_kernel(kernel, mech, records, params)?;
    run_prepared(kernel, &prepared, records, params)
}

/// A kernel lowered for one mechanism set, grid, and timing model —
/// everything [`run_prepared`] needs except the workload itself.
///
/// For dataflow configurations this holds the scheduled block (the
/// expensive part: placement, routing, unrolling); for MIMD
/// configurations the per-node program replicas and the lookup-table
/// image. A prepared program is independent of the record count it runs
/// over (the count only caps the dataflow unroll factor at preparation
/// time), so one plan serves every [`run_prepared`] call whose record
/// count maps to the same unroll — the sharing [`natural_unroll`]
/// exposes to the sweep engine's schedule cache.
#[derive(Clone)]
pub struct PreparedProgram {
    mech: MechanismSet,
    variant: PreparedVariant,
    analysis: AnalysisReport,
}

#[derive(Clone)]
enum PreparedVariant {
    Dataflow(ScheduledKernel),
    Mimd {
        progs: Vec<MimdProgram>,
        table: Vec<Value>,
    },
}

impl PreparedProgram {
    /// The mechanism set this program was lowered for.
    #[must_use]
    pub fn mechanisms(&self) -> MechanismSet {
        self.mech
    }

    /// Dataflow unroll factor (1 for MIMD configurations).
    #[must_use]
    pub fn unroll(&self) -> usize {
        match &self.variant {
            PreparedVariant::Dataflow(sched) => sched.unroll,
            PreparedVariant::Mimd { .. } => 1,
        }
    }

    /// What the static analyzer learned about this lowering: warnings
    /// from every pass plus the cost model ([`prepare_kernel`] runs the
    /// analyses once per plan, alongside the legality verifier).
    #[must_use]
    pub fn analysis(&self) -> &AnalysisReport {
        &self.analysis
    }

    /// Sound lower bound on `SimStats::sim_cycles()` for a run over
    /// `records` records: the dataflow bound covers
    /// `ceil(records / unroll)` block iterations; the MIMD bound is
    /// record-count independent (each rank's per-record loop lives
    /// inside its program). Proven against the whole experiment grid by
    /// `tests/cost_soundness`.
    #[must_use]
    pub fn bound_cycles(&self, records: usize) -> u64 {
        self.analysis.bound_cycles(self.iterations(records))
    }

    /// Scheduling estimate in ticks for a run over `records` records —
    /// the longest-predicted-first ordering key of the sweep engine.
    /// Unlike [`PreparedProgram::bound_cycles`] this is *not* sound
    /// (the MIMD term extrapolates per-record work).
    #[must_use]
    pub fn estimate_ticks(&self, records: usize) -> u64 {
        self.analysis.estimate_ticks(records as u64, self.iterations(records))
    }

    /// Block iterations a run over `records` records executes.
    fn iterations(&self, records: usize) -> u64 {
        match &self.variant {
            PreparedVariant::Dataflow(sched) => records.div_ceil(sched.unroll) as u64,
            PreparedVariant::Mimd { .. } => records as u64,
        }
    }
}

/// The memory layout every dataflow schedule in this driver uses.
fn dataflow_layout() -> LayoutPlan {
    LayoutPlan {
        base_in: memmap::BASE_IN,
        base_out: memmap::BASE_OUT,
        table_base: memmap::TABLE_BASE,
    }
}

/// Map a mechanism set onto the scheduler's target description.
fn dataflow_target(mech: MechanismSet) -> trips_sched::TargetConfig {
    trips_sched::TargetConfig {
        smc: mech.smc,
        l0_data_store: mech.l0_data_store,
        operand_revitalization: mech.operand_revitalization,
        dlp_unroll: mech.inst_revitalization,
    }
}

/// Lower `kernel` for `mech`: schedule the dataflow block (or assemble
/// and replicate the MIMD program) for the machine shape in `params`.
///
/// `records` only *caps* the dataflow unroll factor (a plan is never
/// unrolled past the records it will process); MIMD preparation ignores
/// it entirely. The result depends on `kernel`, `mech`, `records`,
/// `params.grid` and `params.timing` — notably *not* on `params.seed`,
/// which only affects the workload generated at run time. That
/// independence, plus [`natural_unroll`] to collapse record counts that
/// choose the same unroll, is what makes the sweep engine's schedule
/// cache sound.
///
/// Every artifact is passed through the static verifier
/// ([`trips_sched::verify`]) exactly once per prepared plan: dataflow
/// blocks inside [`schedule_dataflow`], MIMD programs here via
/// [`trips_sched::verify::verify_mimd`]. Because the sweep engine caches
/// plans, the verifier's cost is paid once per distinct lowering rather
/// than once per cell.
///
/// # Errors
///
/// Propagates scheduling and verification failures ([`DlpError`]).
pub fn prepare_kernel(
    kernel: &dyn DlpKernel,
    mech: MechanismSet,
    records: usize,
    params: &ExperimentParams,
) -> Result<PreparedProgram, DlpError> {
    let watchdog = params.watchdog.unwrap_or(trips_sim::WATCHDOG_TICKS);
    let mut analysis = AnalysisReport::default();
    let (_, mut warnings) = analyze::analyze_kernel(&kernel.ir());
    analysis.warnings.append(&mut warnings);
    let prepared = if mech.local_pc {
        let prog = kernel.mimd_program(MimdTarget { tables_in_l0: mech.l0_data_store })?;
        let progs = replicate_mimd(&prog, params.grid.nodes());
        let vparams = trips_sched::verify::MimdVerifyParams {
            n_ranks: params.grid.nodes(),
            num_regs: trips_sched::verify::MIMD_NUM_REGS,
            l0_inst_capacity: params.timing.core.l0_inst_capacity,
            watchdog,
        };
        trips_sched::verify::verify_mimd(&progs, &vparams)?;
        analysis.warnings.extend(analyze::analyze_mimd_channels(&progs));
        analysis.mimd_cost = Some(analyze::MimdCost::of(&progs, &params.timing));
        let table = kernel.mimd_table_image();
        PreparedProgram { mech, variant: PreparedVariant::Mimd { progs, table }, analysis }
    } else {
        let sched = schedule_dataflow(
            &kernel.ir(),
            params.grid,
            &params.timing,
            dataflow_target(mech),
            dataflow_layout(),
            ScheduleOptions { max_unroll: Some(records), ..ScheduleOptions::default() },
        )?;
        let (cost, mut cost_warnings) = analyze::DataflowCost::of(
            &sched.block,
            params.grid,
            &params.timing,
            mech.inst_revitalization,
            mech.operand_revitalization,
        );
        analysis.warnings.append(&mut cost_warnings);
        analysis.dataflow_cost = Some(cost);
        PreparedProgram { mech, variant: PreparedVariant::Dataflow(sched), analysis }
    };
    // With zero records the estimate degenerates to the sound tick
    // bound for the full prepared record count — the right side to hold
    // against the watchdog budget.
    let mut prepared = prepared;
    let bound = prepared.analysis.estimate_ticks(0, prepared.iterations(records));
    if let Some(w) = analyze::cost::watchdog_margin(kernel.name(), bound, watchdog) {
        prepared.analysis.warnings.push(w);
    }
    Ok(prepared)
}

/// The unroll factor [`prepare_kernel`] would pick for `kernel` on `mech`
/// with an *unbounded* record count — computed without running the
/// expensive placement and routing passes. Returns 0 for MIMD
/// configurations (`local_pc`), which never unroll: every record count
/// shares one plan there.
///
/// For a dataflow configuration the unroll `prepare_kernel` actually
/// chooses for `records` is `natural_unroll(..).min(records)` (both
/// sides are ≥ 1 and ≤ 512), and two record counts with the same value
/// of that expression produce bit-identical [`PreparedProgram`]s. The
/// sweep engine uses this to coarsen its schedule-cache key so that
/// large grids varying only the record count reuse one plan.
///
/// # Errors
///
/// Propagates IR validation / lowering probe failures ([`DlpError`]).
pub fn natural_unroll(
    kernel: &dyn DlpKernel,
    mech: MechanismSet,
    params: &ExperimentParams,
) -> Result<usize, DlpError> {
    if mech.local_pc {
        return Ok(0);
    }
    trips_sched::planned_unroll(
        &kernel.ir(),
        params.grid,
        &params.timing,
        dataflow_target(mech),
        dataflow_layout(),
        ScheduleOptions::default(),
    )
}

/// Cross-run cache of generated workloads, keyed on
/// `(kernel name, padded record count, seed)` — exactly the inputs of
/// [`DlpKernel::workload`] — so a sweep generates each kernel's input
/// stream and reference output once and shares it (via [`Arc`]) across
/// all the configurations of a cell group instead of regenerating it per
/// cell.
///
/// Strictly observational: the cached [`Workload`] is bit-identical to a
/// fresh generation (kernel workloads are pure functions of the key), so
/// statistics with and without the cache match exactly. The hit/miss
/// counters are deterministic too — the lock is held across generation,
/// so the counts depend only on the multiset of keys requested, never on
/// thread interleaving.
#[derive(Default)]
pub struct WorkloadCache {
    /// Linear scan, not a hash map: sweep grids touch a handful of
    /// distinct keys, and a scan avoids allocating a `String` key per
    /// lookup on the (dominant) hit path.
    entries: Mutex<Vec<(WorkloadKey, Arc<Workload>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// `(kernel name, padded record count, seed)` — the inputs of
/// [`DlpKernel::workload`].
type WorkloadKey = (String, usize, u64);

impl WorkloadCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lookups served from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to generate the workload.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The workload for `(kernel, padded_records, seed)`, generated on
    /// first request and shared thereafter.
    fn get(&self, kernel: &dyn DlpKernel, padded_records: usize, seed: u64) -> Arc<Workload> {
        let name = kernel.name();
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, w)) = entries
            .iter()
            .find(|((k, r, s), _)| k == name && *r == padded_records && *s == seed)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(w);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let w = Arc::new(kernel.workload(padded_records, seed));
        entries.push(((name.to_string(), padded_records, seed), Arc::clone(&w)));
        w
    }
}

/// Reusable per-worker state for [`run_prepared_in`]: the engines'
/// [`EngineArena`] plus an optional shared [`WorkloadCache`]. One scratch
/// per worker thread turns a sweep's steady state allocation-free.
#[derive(Default)]
pub struct RunScratch {
    arena: EngineArena,
    workloads: Option<Arc<WorkloadCache>>,
}

impl RunScratch {
    /// A fresh scratch with no workload cache (workloads are generated
    /// per run, as [`run_prepared`] always did).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh scratch whose runs share `cache` for workload generation.
    #[must_use]
    pub fn with_workload_cache(cache: Arc<WorkloadCache>) -> Self {
        RunScratch { arena: EngineArena::new(), workloads: Some(cache) }
    }

    /// The shared workload cache, when one is installed.
    #[must_use]
    pub fn workload_cache(&self) -> Option<&Arc<WorkloadCache>> {
        self.workloads.as_ref()
    }
}

/// Execute a [`PreparedProgram`] over `records` records: generate the
/// workload from `params.seed`, stage memory, simulate, and verify every
/// output word against the kernel's reference implementation.
///
/// `kernel` must be the kernel `prepared` was built from (it supplies
/// the workload and reference outputs); the grid and timing in `params`
/// must match the ones used at preparation time, and `records` must not
/// exceed the cap given to [`prepare_kernel`] (the dataflow unroll never
/// exceeds that cap, so any such count pads cleanly).
///
/// # Errors
///
/// Propagates simulation failures ([`DlpError`]).
pub fn run_prepared(
    kernel: &dyn DlpKernel,
    prepared: &PreparedProgram,
    records: usize,
    params: &ExperimentParams,
) -> LaneResult {
    run_prepared_in(kernel, prepared, records, params, &mut RunScratch::new())
}

/// As [`run_prepared`], threading a reusable [`RunScratch`] through the
/// run: the engines recycle `scratch`'s arena (frames, throttle tables,
/// MIMD channels, event-queue buckets) and the workload comes from the
/// scratch's [`WorkloadCache`] when one is installed. Statistics and
/// verification are bit-identical to [`run_prepared`].
///
/// # Errors
///
/// Propagates simulation failures ([`DlpError`]).
pub fn run_prepared_in(
    kernel: &dyn DlpKernel,
    prepared: &PreparedProgram,
    records: usize,
    params: &ExperimentParams,
    scratch: &mut RunScratch,
) -> LaneResult {
    let (stats, machine, workload, out_words) =
        run_prepared_parts(kernel, prepared, records, params, scratch)?;
    Ok((stats, verify_lane(kernel, &machine, &workload, records, out_words)))
}

/// The record count the *simulation* actually sees for `records`:
/// dataflow runs pad to a whole number of unrolled iterations, MIMD
/// programs loop over the raw count (`r29`). Two record counts with the
/// same sim count (and the same seed, fault plan, and machine shape)
/// run the exact same simulation — only the verified output prefix
/// differs — which is what lets [`run_prepared_batch_in`] collapse them
/// into one lane class.
fn sim_records(prepared: &PreparedProgram, records: usize) -> usize {
    match &prepared.variant {
        PreparedVariant::Mimd { .. } => records,
        PreparedVariant::Dataflow(sched) => records.div_ceil(sched.unroll) * sched.unroll,
    }
}

/// Check one lane's unpadded output prefix against its reference.
fn verify_lane(
    kernel: &dyn DlpKernel,
    machine: &Machine,
    workload: &Workload,
    records: usize,
    out_words: usize,
) -> Option<usize> {
    let got = machine.memory().read_words(memmap::BASE_OUT, records * out_words);
    let expected = &workload.expected[..records * out_words];
    first_mismatch(kernel.output_kind(), &got, expected)
}

/// Everything [`run_prepared_in`] does except output verification:
/// stage, simulate, and hand back the statistics together with the
/// machine (whose memory holds the outputs) and the workload (whose
/// `expected` holds the reference), so callers can verify any record
/// prefix of the same simulation — the batch path verifies each lane's
/// own prefix against one shared class run.
fn run_prepared_parts(
    kernel: &dyn DlpKernel,
    prepared: &PreparedProgram,
    records: usize,
    params: &ExperimentParams,
    scratch: &mut RunScratch,
) -> Result<(SimStats, Machine, Arc<Workload>, usize), DlpError> {
    let ir = kernel.ir();
    let in_words = ir.record_in_words() as usize;
    let out_words = ir.record_out_words() as usize;
    // Pad the record count to a whole number of unrolled iterations.
    let padded_records = sim_records(prepared, records);
    let mut machine = Machine::new(params.grid, params.timing, prepared.mech);
    if let Some(ticks) = params.watchdog {
        machine.set_watchdog(ticks);
    }
    // Install the injector before staging so DMA faults during SMC
    // staging are part of the deterministic schedule too.
    if !params.fault.is_none() {
        machine.install_fault_plan(params.fault, params.seed);
    }

    let workload = match &scratch.workloads {
        Some(cache) => cache.get(kernel, padded_records, params.seed),
        None => Arc::new(kernel.workload(padded_records, params.seed)),
    };
    stage(&mut machine, &workload, in_words)?;

    let stats = match &prepared.variant {
        PreparedVariant::Mimd { progs, table } => {
            if !table.is_empty() {
                if prepared.mech.l0_data_store {
                    machine.load_l0_table(table)?;
                } else {
                    machine.memory_mut().write_words(memmap::TABLE_BASE, table);
                }
            }
            machine.run_mimd_in(progs, records as u64, &mut scratch.arena)?
        }
        PreparedVariant::Dataflow(sched) => {
            if !sched.table_image.is_empty() {
                if sched.tables_in_l0 {
                    machine.load_l0_table(&sched.table_image)?;
                } else {
                    machine.memory_mut().write_words(memmap::TABLE_BASE, &sched.table_image);
                }
            }
            for (reg, v) in &sched.const_regs {
                machine.set_reg(*reg, *v);
            }
            let iterations = (padded_records / sched.unroll) as u64;
            // The lowering statically verified this block as its final
            // step (verification subsumes the engine's shape checks), so
            // the engine need not re-hash it per cell.
            scratch.arena.mark_dataflow_block_validated(
                &sched.block,
                params.grid,
                params.timing.core.rs_slots_per_node,
            );
            machine.run_dataflow_in(&sched.block, iterations, &mut scratch.arena)?
        }
    };

    Ok((stats, machine, workload, out_words))
}

/// One lane of a batched dispatch: the record count and experiment
/// parameters of one scalar run of a shared [`PreparedProgram`]. In the
/// sweep engine a lane is one cell attempt (same lowering, possibly a
/// different fault salt); in the hot-path harness it is one repetition
/// of a case.
#[derive(Clone, Copy, Debug)]
pub struct BatchLane {
    /// Records to process (excluding unroll padding).
    pub records: usize,
    /// Per-lane experiment parameters. Grid, timing, and watchdog must
    /// be uniform across a batch ([`batchable`]); seed and fault plan
    /// may vary per lane.
    pub params: ExperimentParams,
}

/// Whether `lanes` may be dispatched through
/// [`run_prepared_batch_in`]'s lockstep path: non-empty, with uniform
/// grid shape, timing model, and watchdog. Seeds, fault plans, *and
/// record counts* may differ freely — they become lane *classes* inside
/// the batch, and a class whose record tail is exhausted masks off
/// while the rest keep running (mask-padded tails, DESIGN.md §12).
#[must_use]
pub fn batchable(lanes: &[BatchLane]) -> bool {
    let Some(first) = lanes.first() else { return false };
    lanes.len() <= trips_sim::batch::MAX_CLASSES
        && lanes.iter().all(|l| {
            l.params.grid == first.params.grid
                && l.params.timing == first.params.timing
                && l.params.watchdog == first.params.watchdog
        })
}

/// Whether two lanes are *uniform*: they would run the exact same
/// simulation, so one run serves both (each lane still verifies its own
/// output prefix). The comparison is the full simulation identity —
/// seed, fault plan, machine shape, and the record count as the
/// *simulation* sees it ([`sim_records`]: two dataflow counts padding to
/// the same unroll multiple collapse; MIMD counts must match exactly).
/// Fault plans that are both inert ([`FaultPlan::is_none`]) compare
/// equal regardless of salt — the injector never installs, so the salt
/// is unobservable.
fn same_class(prepared: &PreparedProgram, a: &BatchLane, b: &BatchLane) -> bool {
    sim_records(prepared, a.records) == sim_records(prepared, b.records)
        && a.params.seed == b.params.seed
        && ((a.params.fault.is_none() && b.params.fault.is_none())
            || a.params.fault == b.params.fault)
        && a.params.grid == b.params.grid
        && a.params.timing == b.params.timing
        && a.params.watchdog == b.params.watchdog
}

/// As [`run_prepared_in`], for a whole batch of lanes at once: dedupe
/// the lanes into uniformity classes, execute all classes in lockstep
/// through one shared event queue
/// ([`trips_sim::batch::run_dataflow_batch_in`] /
/// [`trips_sim::batch::run_mimd_batch_in`]), and verify each class's
/// outputs against its own workload. Per-lane results are bit-identical
/// to calling [`run_prepared_in`] on each lane alone — the whole point;
/// see DESIGN.md §10 — so the returned vector (same order as `lanes`)
/// can be consumed exactly as N scalar results.
///
/// Fast paths: a fully uniform batch (one class — the common case when
/// repeating a measurement or retrying without faults) runs the scalar
/// engine once and replicates its result; a batch that is not
/// [`batchable`] falls back to per-class scalar runs. Any error while
/// staging a class's machine also falls back to the all-scalar path,
/// which is trivially identical.
pub fn run_prepared_batch_in(
    kernel: &dyn DlpKernel,
    prepared: &PreparedProgram,
    lanes: &[BatchLane],
    scratch: &mut RunScratch,
) -> Vec<LaneResult> {
    // Dedupe lanes into uniformity classes (reps = lane index of each
    // class representative).
    let mut reps: Vec<usize> = Vec::new();
    let mut class_of: Vec<usize> = Vec::with_capacity(lanes.len());
    for (i, lane) in lanes.iter().enumerate() {
        match reps.iter().position(|&r| same_class(prepared, &lanes[r], lane)) {
            Some(c) => class_of.push(c),
            None => {
                class_of.push(reps.len());
                reps.push(i);
            }
        }
    }

    // One class, an unbatchable mix, or more classes than mask bits:
    // run each class through the scalar reference path.
    if reps.len() <= 1 || !batchable(lanes) {
        return run_classes_scalar(kernel, prepared, lanes, &reps, &class_of, scratch);
    }

    match run_classes_lockstep(kernel, prepared, lanes, &reps, &class_of, scratch) {
        Some(per_lane) => per_lane,
        // A class failed setup (staging DMA, L0 capacity): take the
        // scalar path for every class so error attribution matches
        // the scalar contract exactly.
        None => run_classes_scalar(kernel, prepared, lanes, &reps, &class_of, scratch),
    }
}

/// The scalar reference path of [`run_prepared_batch_in`]: one
/// [`run_prepared_parts`] run per class, then every lane verifies its
/// own record prefix against its class's outputs.
fn run_classes_scalar(
    kernel: &dyn DlpKernel,
    prepared: &PreparedProgram,
    lanes: &[BatchLane],
    reps: &[usize],
    class_of: &[usize],
    scratch: &mut RunScratch,
) -> Vec<LaneResult> {
    let per_class: Vec<_> = reps
        .iter()
        .map(|&r| run_prepared_parts(kernel, prepared, lanes[r].records, &lanes[r].params, scratch))
        .collect();
    lanes
        .iter()
        .zip(class_of)
        .map(|(lane, &c)| match &per_class[c] {
            Ok((stats, machine, workload, out_words)) => {
                Ok((*stats, verify_lane(kernel, machine, workload, lane.records, *out_words)))
            }
            Err(e) => Err(e.clone()),
        })
        .collect()
}

/// The lockstep core of [`run_prepared_batch_in`]: one machine per
/// class, staged exactly as [`run_prepared_in`] stages its single
/// machine, then one batched engine dispatch with per-class record
/// counts (classes with shorter tails mask off as they finish). Every
/// lane then verifies its own record prefix against its class's
/// outputs. Returns `None` if any class's setup errors (the caller
/// falls back to scalar).
fn run_classes_lockstep(
    kernel: &dyn DlpKernel,
    prepared: &PreparedProgram,
    lanes: &[BatchLane],
    reps: &[usize],
    class_of: &[usize],
    scratch: &mut RunScratch,
) -> Option<Vec<LaneResult>> {
    let ir = kernel.ir();
    let in_words = ir.record_in_words() as usize;
    let out_words = ir.record_out_words() as usize;

    // Per-class machine + workload setup, mirroring `run_prepared_in`
    // statement for statement (each class stages its own padded count).
    let mut machines: Vec<Machine> = Vec::with_capacity(reps.len());
    let mut workloads: Vec<Arc<Workload>> = Vec::with_capacity(reps.len());
    for &r in reps {
        let params = &lanes[r].params;
        let padded_records = sim_records(prepared, lanes[r].records);
        let mut machine = Machine::new(params.grid, params.timing, prepared.mech);
        if let Some(ticks) = params.watchdog {
            machine.set_watchdog(ticks);
        }
        if !params.fault.is_none() {
            machine.install_fault_plan(params.fault, params.seed);
        }
        let workload = match &scratch.workloads {
            Some(cache) => cache.get(kernel, padded_records, params.seed),
            None => Arc::new(kernel.workload(padded_records, params.seed)),
        };
        stage(&mut machine, &workload, in_words).ok()?;
        machines.push(machine);
        workloads.push(workload);
    }

    let results = match &prepared.variant {
        PreparedVariant::Mimd { progs, table } => {
            if !table.is_empty() {
                for machine in &mut machines {
                    if prepared.mech.l0_data_store {
                        machine.load_l0_table(table).ok()?;
                    } else {
                        machine.memory_mut().write_words(memmap::TABLE_BASE, table);
                    }
                }
            }
            let records: Vec<u64> = reps.iter().map(|&r| lanes[r].records as u64).collect();
            trips_sim::batch::run_mimd_batch_in(&mut machines, progs, &records, &mut scratch.arena)
        }
        PreparedVariant::Dataflow(sched) => {
            for machine in &mut machines {
                if !sched.table_image.is_empty() {
                    if sched.tables_in_l0 {
                        machine.load_l0_table(&sched.table_image).ok()?;
                    } else {
                        machine.memory_mut().write_words(memmap::TABLE_BASE, &sched.table_image);
                    }
                }
                for (reg, v) in &sched.const_regs {
                    machine.set_reg(*reg, *v);
                }
            }
            let iterations: Vec<u64> = reps
                .iter()
                .map(|&r| (sim_records(prepared, lanes[r].records) / sched.unroll) as u64)
                .collect();
            let params = &lanes[reps[0]].params;
            scratch.arena.mark_dataflow_block_validated(
                &sched.block,
                params.grid,
                params.timing.core.rs_slots_per_node,
            );
            trips_sim::batch::run_dataflow_batch_in(
                &mut machines,
                &sched.block,
                &iterations,
                &mut scratch.arena,
            )
        }
    };

    // Per-lane verification against the lane's own record prefix of its
    // class's reference output.
    Some(
        lanes
            .iter()
            .zip(class_of)
            .map(|(lane, &c)| match &results[c] {
                Ok(stats) => Ok((
                    *stats,
                    verify_lane(kernel, &machines[c], &workloads[c], lane.records, out_words),
                )),
                Err(e) => Err(e.clone()),
            })
            .collect(),
    )
}

/// Write a workload into memory and stage the SMC window.
fn stage(machine: &mut Machine, workload: &Workload, in_words: usize) -> Result<(), DlpError> {
    machine.memory_mut().write_words(memmap::BASE_IN, &workload.input_words);
    if !workload.tex_words.is_empty() {
        machine.memory_mut().write_words(memmap::TEX_BASE, &workload.tex_words);
    }
    if machine.mechanisms().smc {
        let len = (workload.records * in_words) as u64;
        machine.stage_smc(memmap::BASE_IN..memmap::BASE_IN + len)?;
    }
    // Touch the output region so the memory footprint is allocated up
    // front rather than during timing-sensitive simulation.
    let _ = machine.memory().read(memmap::BASE_OUT);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_kernels::suite;

    fn quick(kernel_name: &str, config: MachineConfig) -> RunOutcome {
        let params = ExperimentParams::default();
        let k = suite().into_iter().find(|k| k.name() == kernel_name).expect("kernel exists");
        run_kernel(k.as_ref(), config, 24, &params).expect("run succeeds")
    }

    #[test]
    fn convert_runs_verified_on_baseline_and_s() {
        for config in [MachineConfig::Baseline, MachineConfig::S] {
            let out = quick("convert", config);
            assert!(out.verified(), "convert on {config}: mismatch at {:?}", out.mismatch);
            assert!(out.stats.cycles() > 0);
        }
    }

    #[test]
    fn fft_faster_on_s_than_baseline() {
        // Enough records to amortize the SMC staging DMA — at a handful of
        // records the setup cost rightly dominates (streams are a
        // steady-state mechanism).
        let params = ExperimentParams::default();
        let k = suite().into_iter().find(|k| k.name() == "fft").expect("kernel exists");
        let base = run_kernel(k.as_ref(), MachineConfig::Baseline, 512, &params).unwrap();
        let s = run_kernel(k.as_ref(), MachineConfig::S, 512, &params).unwrap();
        assert!(base.verified() && s.verified());
        assert!(
            s.stats.cycles() < base.stats.cycles(),
            "S {} should beat baseline {}",
            s.stats.cycles(),
            base.stats.cycles()
        );
    }

    #[test]
    fn blowfish_verified_on_mimd_with_l0() {
        let out = quick("blowfish", MachineConfig::MD);
        assert!(out.verified(), "mismatch at {:?}", out.mismatch);
        assert!(out.stats.l0_accesses > 0, "lookups must hit the L0 store");
    }

    #[test]
    fn cycles_per_record_is_positive() {
        let out = quick("lu", MachineConfig::S);
        assert!(out.cycles_per_record() > 0.0);
    }

    #[test]
    fn workload_cache_and_scratch_are_observationally_pure() {
        let params = ExperimentParams::default();
        let k = suite().into_iter().find(|k| k.name() == "convert").expect("kernel exists");
        let prepared =
            prepare_kernel(k.as_ref(), MachineConfig::S.mechanisms(), 24, &params).unwrap();
        let fresh = run_prepared(k.as_ref(), &prepared, 24, &params).unwrap();

        let cache = Arc::new(WorkloadCache::new());
        let mut scratch = RunScratch::with_workload_cache(Arc::clone(&cache));
        let first = run_prepared_in(k.as_ref(), &prepared, 24, &params, &mut scratch).unwrap();
        let second = run_prepared_in(k.as_ref(), &prepared, 24, &params, &mut scratch).unwrap();
        assert_eq!(fresh, first, "cached+arena run == plain run");
        assert_eq!(fresh, second, "warm scratch stays bit-identical");
        assert_eq!(cache.misses(), 1, "workload generated once");
        assert_eq!(cache.hits(), 1, "second run served from the cache");
    }

    #[test]
    fn default_records_scale() {
        assert!(default_records("dct", 1) < default_records("convert", 1));
        assert_eq!(default_records("unknown-kernel", 1), 512);
        assert!(default_records("fft", 2) > default_records("fft", 1));
    }
}
