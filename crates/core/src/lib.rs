//! # dlp-core
//!
//! The top layer of the `dlp-mech` workspace: everything from
//! *"Universal Mechanisms for Data-Parallel Architectures"* (MICRO 2003)
//! assembled behind one API.
//!
//! * [`MachineConfig`] — the paper's Table 5 run-time machine
//!   configurations (baseline, **S**, **S-O**, **S-O-D**, **M**, **M-D**),
//!   each a combination of the universal mechanisms.
//! * [`recommend`] — the Table 3 logic: map a kernel's measured attributes
//!   to the mechanisms (and configuration) that serve it best.
//! * [`run_kernel`] — the experiment driver: schedule a benchmark kernel
//!   onto a configuration, stage its workload, simulate, and *verify the
//!   outputs against the kernel's reference implementation*.
//! * [`flexible`] — the Figure 5 experiment: per-kernel speedups of every
//!   configuration over the baseline, plus the harmonic-mean comparison of
//!   the flexible architecture against each fixed one (the paper's
//!   5%–55% headline).
//! * [`specialized`] — the Table 6 comparison against published
//!   specialized-hardware numbers (MPC7447, Imagine, Tarantula,
//!   CryptoManiac, QuadroFX).
//! * [`sweep`] — the parallel experiment engine: the kernel ×
//!   configuration grid run by work-stealing workers with schedule
//!   caching and deterministic seeding, emitting the [`sweep::SweepReport`]
//!   artifact every figure/table binary aggregates from.
//! * [`store`] — the persistence layer that turns the sweep into a
//!   service: a content-addressed result store (warm re-runs execute
//!   nothing), sweep checkpoint/resume manifests, and a dead-letter
//!   queue of replayable failed cells. See `OPERATIONS.md` for the
//!   operator guide.
//!
//! # Quick start
//!
//! ```no_run
//! use dlp_core::{run_kernel, MachineConfig, ExperimentParams};
//! use dlp_kernels::suite;
//!
//! let params = ExperimentParams::default();
//! for kernel in suite() {
//!     if !kernel.in_perf_suite() {
//!         continue;
//!     }
//!     let out = run_kernel(kernel.as_ref(), MachineConfig::SO, 64, &params)?;
//!     assert!(out.verified(), "{} must compute correct results", kernel.name());
//!     println!("{}: {} ops/cycle", kernel.name(), out.stats.ops_per_cycle());
//! }
//! # Ok::<(), dlp_common::DlpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panicking escape hatches are banned outside tests: a bad cell or an
// injected fault must surface as a structured `DlpError`, never tear
// down a whole sweep (CI promotes these to errors).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod energy;
mod flexible;
mod recommend;
mod runner;
pub mod specialized;
pub mod store;
pub mod sweep;

pub use config::MachineConfig;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use flexible::{flexible, Figure5, Figure5Row, FlexibleSummary};
pub use recommend::{recommend, Recommendation};
pub use runner::{
    batchable, default_records, natural_unroll, prepare_kernel, run_kernel, run_kernel_mech,
    run_prepared, run_prepared_batch_in, run_prepared_in, BatchLane, ExperimentParams,
    LaneResult, PreparedProgram, RunOutcome, RunScratch, WorkloadCache,
};
pub use store::{
    DeadLetterQueue, Digest, DlqRecord, ManifestWriter, ResultStore, StoreKey, SweepManifest,
};
pub use sweep::{
    default_worker_count, CellOutcome, CellSpec, Sweep, SweepCell, SweepPolicy, SweepReport,
};
