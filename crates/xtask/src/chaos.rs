//! `cargo xtask chaos` — the deterministic kill harness that proves the
//! store's crash-anywhere contract mechanically.
//!
//! For every named crashpoint in [`dlp_core::store::CRASHPOINTS`] the
//! driver runs a child `sweep` with `DLP_CRASHPOINT=<site>` so the
//! child aborts mid-write, then:
//!
//! 1. runs `sweep --fsck` over the crashed store (quarantine/gc must
//!    succeed on any post-kill state),
//! 2. resumes — `--resume` if the manifest still loads, a fresh run
//!    otherwise — and
//! 3. asserts the canonical `SweepReport` is **byte-identical** to an
//!    uninterrupted run's.
//!
//! Crashpoints are grouped into three legs by the write path that
//! reaches them: the *normal* leg (stamp, entry, manifest sites), the
//! *watchdog* leg (`--watchdog 2` dead-letters every cell, reaching the
//! DLQ append sites), and the *replay* leg (`--replay-dlq` reaches the
//! atomic queue rewrite; recovery there means the queue converges to
//! the uninterrupted rewrite's records). A seeded randomized campaign
//! then replays the same check at random `(site, nth-hit)` pairs.
//!
//! The run writes `BENCH_chaos.json` and exits non-zero on any
//! divergence. `cargo xtask storeck DIR` exposes the same fsck the
//! harness uses.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use dlp_common::SplitMix64;
use dlp_core::store::{load_dlq, DlqRecord, SweepManifest, CRASHPOINTS};
use serde::Serialize;

/// Which child invocation reaches a crashpoint.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Leg {
    /// Plain quick sweep with a store and manifest.
    Normal,
    /// `--watchdog 2`: every cell dead-letters, reaching the DLQ sites.
    Watchdog,
    /// `--replay-dlq`: reaches the atomic queue-rewrite sites.
    Replay,
}

fn leg_of(site: &str) -> Leg {
    if site.starts_with("dlq-rewrite.") {
        Leg::Replay
    } else if site.starts_with("dlq.") {
        Leg::Watchdog
    } else {
        Leg::Normal
    }
}

#[derive(Serialize)]
struct SiteResult {
    site: String,
    nth: u64,
    leg: &'static str,
    /// Whether the armed crashpoint actually aborted the child.
    killed: bool,
    /// Whether the post-kill store fsck'd clean (no I/O errors).
    fsck_ok: bool,
    /// Entries fsck quarantined on the crashed store.
    quarantined: u64,
    /// Stale temp files fsck removed.
    gc_tmp: u64,
    /// Whether the resumed run used `--resume` (the manifest survived).
    resumed_from_manifest: bool,
    /// The contract: recovery output byte-identical to uninterrupted.
    identical: bool,
}

#[derive(Serialize)]
struct ChaosReport {
    seed: u64,
    matrix: Vec<SiteResult>,
    campaign: Vec<SiteResult>,
    failures: usize,
}

/// Entry point for `cargo xtask chaos [--quick] [--seed N] [--trials N]`.
pub fn run(args: &[String]) -> ExitCode {
    let flag = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = flag("--seed").and_then(|s| s.parse().ok()).unwrap_or(0x00D1_2003);
    let trials: u64 =
        flag("--trials").and_then(|s| s.parse().ok()).unwrap_or(if quick { 3 } else { 8 });

    let Some(harness) = Harness::build() else {
        return ExitCode::FAILURE;
    };

    let mut matrix = Vec::new();
    println!("chaos: kill matrix over {} crashpoints", CRASHPOINTS.len());
    for site in CRASHPOINTS {
        let result = harness.exercise(site, 1, true);
        print_result(&result);
        matrix.push(result);
    }

    // Seeded randomized campaign: same contract at random (site, nth)
    // pairs. Deeper hits may never fire (the child completes) — the
    // recovery check still runs on whatever state the child left.
    let mut rng = SplitMix64::new(seed);
    let sweep_sites: Vec<&&str> =
        CRASHPOINTS.iter().filter(|s| leg_of(s) != Leg::Replay).collect();
    let mut campaign = Vec::new();
    println!("chaos: randomized campaign, seed {seed}, {trials} trials");
    for _ in 0..trials {
        let site = sweep_sites[rng.below(sweep_sites.len() as u64) as usize];
        let nth = 1 + rng.below(3);
        let result = harness.exercise(site, nth, false);
        print_result(&result);
        campaign.push(result);
    }

    let failures = matrix
        .iter()
        .chain(&campaign)
        .filter(|r| !r.identical || !r.fsck_ok || (r.nth == 1 && !r.killed))
        .count();
    let report = ChaosReport { seed, matrix, campaign, failures };
    let out = "BENCH_chaos.json";
    if let Err(e) = std::fs::write(out, dlp_common::json::to_string(&report)) {
        eprintln!("chaos: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("chaos: wrote {out}");
    if failures == 0 {
        println!("chaos: every kill recovered to a byte-identical report");
        ExitCode::SUCCESS
    } else {
        eprintln!("chaos: {failures} site(s) FAILED the crash-recovery contract");
        ExitCode::FAILURE
    }
}

fn print_result(r: &SiteResult) {
    println!(
        "  {:<22} nth={} leg={:<8} killed={:<5} fsck(q={},tmp={}) resume={:<5} identical={}",
        r.site,
        r.nth,
        r.leg,
        r.killed,
        r.quarantined,
        r.gc_tmp,
        if r.resumed_from_manifest { "warm" } else { "cold" },
        r.identical,
    );
}

/// `cargo xtask storeck DIR` — run the store fsck and print its report.
pub fn storeck(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        eprintln!("usage: cargo xtask storeck <store-dir>");
        return ExitCode::FAILURE;
    };
    match dlp_core::store::fsck(Path::new(dir)) {
        Ok(report) => {
            println!("{}", dlp_common::json::to_string(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("storeck {dir}: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Harness {
    sweep_bin: PathBuf,
    workdir: PathBuf,
    /// Uninterrupted canonical reports, one per sweep leg.
    normal_ref: Vec<u8>,
    watchdog_ref: Vec<u8>,
    /// The pristine DLQ the replay leg starts from, and the records an
    /// uninterrupted replay leaves behind.
    dlq_seed: Vec<u8>,
    replay_ref: Vec<DlqRecord>,
}

impl Harness {
    /// Build the release sweep binary and the per-leg references.
    fn build() -> Option<Harness> {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        eprintln!("chaos: building release sweep binary...");
        let status = Command::new(&cargo)
            .args(["build", "--release", "-p", "dlp-bench", "--bin", "sweep"])
            .status()
            .ok()?;
        if !status.success() {
            eprintln!("chaos: cargo build failed");
            return None;
        }
        let sweep_bin = Path::new("target/release/sweep").to_path_buf();
        let workdir = Path::new("target/chaos").to_path_buf();
        let _ = std::fs::remove_dir_all(&workdir);
        std::fs::create_dir_all(&workdir).ok()?;

        let mut h = Harness {
            sweep_bin,
            workdir,
            normal_ref: Vec::new(),
            watchdog_ref: Vec::new(),
            dlq_seed: Vec::new(),
            replay_ref: Vec::new(),
        };
        eprintln!("chaos: recording uninterrupted reference runs...");
        let dir = h.fresh_dir("ref-normal");
        h.run_sweep(&dir, Leg::Normal, None, false);
        h.normal_ref = std::fs::read(dir.join("report.json")).ok()?;
        let dir = h.fresh_dir("ref-watchdog");
        h.run_sweep(&dir, Leg::Watchdog, None, false);
        h.watchdog_ref = std::fs::read(dir.join("report.json")).ok()?;
        h.dlq_seed = std::fs::read(dir.join("dlq.jsonl")).ok()?;
        let dir = h.fresh_dir("ref-replay");
        std::fs::write(dir.join("dlq.jsonl"), &h.dlq_seed).ok()?;
        h.run_replay(&dir, None);
        h.replay_ref = load_dlq(&dir.join("dlq.jsonl"));
        if h.normal_ref.is_empty() || h.dlq_seed.is_empty() || h.replay_ref.is_empty() {
            eprintln!("chaos: reference runs produced empty artifacts");
            return None;
        }
        Some(h)
    }

    fn fresh_dir(&self, tag: &str) -> PathBuf {
        let dir = self.workdir.join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create chaos workdir");
        dir
    }

    /// One sweep-leg child. `crash` arms `DLP_CRASHPOINT`; `resume`
    /// adds `--resume` for a surviving manifest. Returns whether the
    /// child was killed by the crashpoint's abort.
    fn run_sweep(&self, dir: &Path, leg: Leg, crash: Option<&str>, resume: bool) -> bool {
        let mut cmd = Command::new(&self.sweep_bin);
        cmd.args(["--quick", "--threads", "1", "--kernels", "convert", "--canonical"]);
        cmd.arg("--store").arg(dir.join("store"));
        cmd.arg("--out").arg(dir.join("report.json"));
        let manifest = dir.join("sweep.manifest.jsonl");
        if resume {
            cmd.arg("--resume").arg(&manifest);
        } else {
            cmd.arg("--manifest").arg(&manifest);
        }
        if leg == Leg::Watchdog {
            cmd.args(["--watchdog", "2"]);
            cmd.arg("--dlq").arg(dir.join("dlq.jsonl"));
        }
        run_child(cmd, crash)
    }

    /// One replay-leg child over `dir/dlq.jsonl`.
    fn run_replay(&self, dir: &Path, crash: Option<&str>) -> bool {
        let mut cmd = Command::new(&self.sweep_bin);
        cmd.args(["--threads", "1", "--replay-dlq"]).arg(dir.join("dlq.jsonl"));
        run_child(cmd, crash)
    }

    /// The full kill → fsck → resume → compare cycle for one site.
    /// `require_kill` marks matrix rows, where the site must fire on
    /// its designated leg.
    fn exercise(&self, site: &str, nth: u64, require_kill: bool) -> SiteResult {
        let leg = leg_of(site);
        let dir = self.fresh_dir(&format!("kill-{site}-{nth}"));
        let spec = format!("{site}:{nth}");

        if leg == Leg::Replay {
            std::fs::write(dir.join("dlq.jsonl"), &self.dlq_seed).expect("seed dlq");
            let killed = self.run_replay(&dir, Some(&spec));
            // Recovery: rerun the replay uninterrupted; the queue must
            // converge to the reference records whichever side of the
            // atomic rewrite the kill landed on.
            self.run_replay(&dir, None);
            let identical = load_dlq(&dir.join("dlq.jsonl")) == self.replay_ref;
            return SiteResult {
                site: site.to_string(),
                nth,
                leg: "replay",
                killed,
                fsck_ok: true,
                quarantined: 0,
                gc_tmp: 0,
                resumed_from_manifest: false,
                identical,
            };
        }

        let killed = self.run_sweep(&dir, leg, Some(&spec), false);
        let fsck = dlp_core::store::fsck(&dir.join("store"));
        let (fsck_ok, quarantined, gc_tmp) = match &fsck {
            Ok(r) => (true, r.quarantined as u64, r.gc_tmp as u64),
            Err(e) => {
                eprintln!("  {site}: post-kill fsck failed: {e}");
                (false, 0, 0)
            }
        };
        let resume = SweepManifest::load(&dir.join("sweep.manifest.jsonl")).is_ok();
        self.run_sweep(&dir, leg, None, resume);
        let reference =
            if leg == Leg::Watchdog { &self.watchdog_ref } else { &self.normal_ref };
        let identical =
            std::fs::read(dir.join("report.json")).is_ok_and(|got| &got == reference);
        if require_kill && !killed {
            eprintln!("  {site}: crashpoint never fired on its designated leg");
        }
        SiteResult {
            site: site.to_string(),
            nth,
            leg: if leg == Leg::Watchdog { "watchdog" } else { "normal" },
            killed,
            fsck_ok,
            quarantined,
            gc_tmp,
            resumed_from_manifest: resume,
            identical,
        }
    }
}

/// Run a child to completion with a clean chaos environment, arming
/// `DLP_CRASHPOINT` when `crash` is set. Returns whether the child died
/// by the crashpoint abort (`SIGABRT`) rather than exiting.
fn run_child(mut cmd: Command, crash: Option<&str>) -> bool {
    cmd.env_remove("DLP_CRASHPOINT").env_remove("DLP_STORE_IOFAULT");
    if let Some(spec) = crash {
        cmd.env("DLP_CRASHPOINT", spec);
    }
    cmd.stdout(std::process::Stdio::null()).stderr(std::process::Stdio::null());
    match cmd.status() {
        Ok(status) => aborted(&status),
        Err(e) => {
            eprintln!("chaos: spawning child: {e}");
            false
        }
    }
}

#[cfg(unix)]
fn aborted(status: &std::process::ExitStatus) -> bool {
    use std::os::unix::process::ExitStatusExt as _;
    status.signal() == Some(6) // SIGABRT, the crashpoint's exit
}

#[cfg(not(unix))]
fn aborted(status: &std::process::ExitStatus) -> bool {
    // Windows reports `abort()` as exit code 3 (no signals).
    status.code() == Some(3)
}
