//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! * `detlint` — the determinism lint: a dependency-free source scanner
//!   that forbids non-deterministic constructs in the engine crates
//!   (hash-order iteration in hot paths, ambient clocks and RNGs,
//!   unordered parallel reductions). Sites with a justified reason to
//!   exist are listed in `detlint.allow`; everything else is a hard CI
//!   failure. Simulation results must be a pure function of the inputs —
//!   this lint keeps the property enforceable instead of aspirational.
//! * `verify-grid` — static-verifier smoke: lowers every suite kernel
//!   for every published machine configuration and requires the program
//!   verifier to accept all of them.
//! * `chaos` — the crash-consistency harness: kills a child sweep at
//!   every named store crashpoint, fscks the wreckage, resumes, and
//!   requires the canonical report to be byte-identical to an
//!   uninterrupted run's; plus a seeded randomized kill campaign.
//! * `storeck` — run the store fsck (scan, quarantine, gc, restamp) on
//!   a result-store directory and print its report.
//! * `asmcheck` — the autovectorization gate: emits release assembly
//!   for `trips-sim` and requires every tagged SIMD pass in the batch
//!   engine (`crates/sim/src/batch/mask.rs`, DESIGN.md §12) to contain
//!   vector instructions.

use std::process::ExitCode;

mod asmcheck;
mod chaos;
mod detlint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("detlint") => {
            let allow = args.get(1).map_or("detlint.allow", String::as_str);
            detlint::run(allow)
        }
        Some("verify-grid") => verify_grid(),
        Some("chaos") => chaos::run(&args[1..]),
        Some("storeck") => chaos::storeck(&args[1..]),
        Some("asmcheck") => asmcheck::run(),
        _ => {
            eprintln!(
                "usage: cargo xtask <detlint [allowlist] | verify-grid | \
                 chaos [--quick] [--seed N] [--trials N] | storeck <dir> | asmcheck>"
            );
            ExitCode::FAILURE
        }
    }
}

/// Lower every suite kernel for every published machine configuration;
/// the static verifier inside `prepare_kernel` must accept them all.
fn verify_grid() -> ExitCode {
    let params = dlp_core::ExperimentParams::default();
    let kernels = dlp_kernels::suite();
    let mut verified = 0usize;
    let mut failures = 0usize;
    for config in dlp_core::MachineConfig::ALL {
        for kernel in &kernels {
            match dlp_core::prepare_kernel(kernel.as_ref(), config.mechanisms(), 64, &params) {
                Ok(_) => verified += 1,
                Err(e) => {
                    failures += 1;
                    eprintln!("verify-grid: {} on {config}: {e}", kernel.name());
                }
            }
        }
    }
    println!(
        "verify-grid: {verified} lowerings statically verified ({} kernels x {} configs)",
        kernels.len(),
        dlp_core::MachineConfig::ALL.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("verify-grid: {failures} lowerings rejected");
        ExitCode::FAILURE
    }
}
