//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! * `detlint` — the determinism lint: a dependency-free source scanner
//!   that forbids non-deterministic constructs in the engine crates
//!   (hash-order iteration in hot paths, ambient clocks and RNGs,
//!   unordered parallel reductions). Sites with a justified reason to
//!   exist are listed in `detlint.allow`; everything else is a hard CI
//!   failure. Simulation results must be a pure function of the inputs —
//!   this lint keeps the property enforceable instead of aspirational.
//! * `verify-grid` — static-verifier smoke: lowers every suite kernel
//!   for every published machine configuration and requires the program
//!   verifier to accept all of them.
//! * `analyze-grid` — the semantic analyzer over the same grid
//!   (DESIGN.md §13): prints every `W*` warning, the sound static
//!   cycle bound per cell, and per-kernel analysis time;
//!   `--deny-warnings` / `--budget N` gate CI, `--json <path>` writes
//!   the machine-readable artifact. Shares its grid walk with
//!   `verify-grid` (the `grid` module).
//! * `chaos` — the crash-consistency harness: kills a child sweep at
//!   every named store crashpoint, fscks the wreckage, resumes, and
//!   requires the canonical report to be byte-identical to an
//!   uninterrupted run's; plus a seeded randomized kill campaign.
//! * `storeck` — run the store fsck (scan, quarantine, gc, restamp) on
//!   a result-store directory and print its report.
//! * `asmcheck` — the autovectorization gate: emits release assembly
//!   for `trips-sim` and requires every tagged SIMD pass in the batch
//!   engine (`crates/sim/src/batch/mask.rs`, DESIGN.md §12) to contain
//!   vector instructions.

use std::process::ExitCode;

mod asmcheck;
mod chaos;
mod detlint;
mod grid;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("detlint") => detlint::main(&args[1..]),
        Some("verify-grid") => grid::verify_grid(),
        Some("analyze-grid") => grid::analyze_grid(&args[1..]),
        Some("chaos") => chaos::run(&args[1..]),
        Some("storeck") => chaos::storeck(&args[1..]),
        Some("asmcheck") => asmcheck::run(),
        _ => {
            eprintln!(
                "usage: cargo xtask <detlint [allowlist] [--format human|json|github] | \
                 verify-grid | \
                 analyze-grid [--deny-warnings] [--budget N] [--json path] | \
                 chaos [--quick] [--seed N] [--trials N] | storeck <dir> | asmcheck>"
            );
            ExitCode::FAILURE
        }
    }
}
