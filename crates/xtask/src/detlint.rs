//! The determinism lint: scan engine-crate sources for constructs whose
//! behavior depends on anything other than the program inputs.
//!
//! The scanner is lexical, not syntactic — the workspace deliberately
//! vendors no Rust parser — so it strips comments and string literals
//! and then searches for forbidden tokens. That makes it conservative
//! in the right direction: a token inside real code is always seen, and
//! prose about a token (doc comments, log strings) never trips it.
//!
//! Forbidden everywhere in the engine crates:
//!
//! * `Instant::now` / `SystemTime` — wall-clock reads; simulated time
//!   comes from the tick counter.
//! * `thread_rng` / `from_entropy` / `rand::` — ambient randomness; all
//!   randomness flows through seeded `dlp_common::SplitMix64`.
//! * `.par_iter` / `.par_bridge` / `par_chunks` — unordered parallel
//!   reductions; the sweep's parallelism merges results in cell order.
//!
//! Additionally forbidden in the *hot* crates (`sim`, `noc`, `mem`),
//! where an iteration-order dependence silently changes statistics:
//!
//! * `HashMap` / `HashSet` — use `BTreeMap`/`BTreeSet`, sorted `Vec`s,
//!   or index-keyed arrays; a justified lookup-only site goes in the
//!   allowlist.
//!
//! Additionally forbidden in the lane-batched engine
//! (`crates/sim/src/batch/`), whose bit-identity contract (DESIGN.md
//! §10) rests on every observable per-class step walking lane classes in
//! ascending index order:
//!
//! * `.rev()` — descending iteration would reorder per-class fault
//!   rolls and stats updates relative to the scalar engines.
//! * `sort_unstable` — unspecified tie order; use a stable sort keyed
//!   on the class index if ordering is ever needed.
//! * `swap_remove` — reorders the tail; lane-indexed tables must keep
//!   their positions.
//! * `.keys()` / `.values()` — map iteration hides what order classes
//!   are visited in; iterate the class index range instead.
//! * `continue` between `detlint: simd-loop-begin` / `simd-loop-end`
//!   markers — the tagged word-at-a-time passes (DESIGN.md §12) are
//!   branch-free by contract so the autovectorizer can keep them SIMD
//!   (`cargo xtask asmcheck` greps the release assembly for vector
//!   ops); a per-lane early-`continue` reintroduces control flow.
//!   Select with a mask word instead.
//!
//! Additionally forbidden in the persistence layer
//! (`crates/core/src/store/`), whose crash-consistency contract
//! (DESIGN.md §11) requires every durable write to go through the
//! atomic-writer primitives — bare writes have no fsync, no rename
//! commit point, no seal, and no crashpoint instrumentation:
//!
//! * `fs::write` / `File::create` — use `atomic_write_file` or
//!   `AppendWriter`. Test modules are exempt (corrupting files is how
//!   the tests exercise the recovery paths): the store rule scans only
//!   the code before the first `#[cfg(test)]`.
//!
//! The allowlist (`detlint.allow`) holds one entry per line:
//! `<path> <token> # <justification>`. Entries without a justification
//! and entries matching no finding are themselves errors, so the file
//! can only shrink or stay honest. A batch-rule escape hatch works the
//! same way: an entry like `crates/sim/src/batch.rs .rev() # <why the
//! reversal cannot reach per-class observable state>` admits one
//! justified site — the store rule's own escape hatch is the
//! `crates/core/src/store/atomic.rs File::create` entry, the single
//! place a file may be created directly (the atomic writer's tempfile).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use serde::Serialize;

/// Crates whose hot paths must not iterate hash containers.
const HOT_CRATES: &[&str] = &["crates/sim", "crates/noc", "crates/mem"];

/// All engine crates subject to the clock/RNG/parallelism rules. The
/// bench crate is excluded (measuring wall-clock is its purpose), as is
/// the xtask itself and the vendored `third_party` stand-ins.
const ENGINE_CRATES: &[&str] = &[
    "crates/common",
    "crates/isa",
    "crates/kernel-ir",
    "crates/verify",
    "crates/noc",
    "crates/mem",
    "crates/sim",
    "crates/sched",
    "crates/kernels",
    "crates/classic",
    "crates/core",
];

/// Tokens forbidden in every engine crate.
const AMBIENT_TOKENS: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read; simulated time is the tick counter"),
    ("SystemTime", "wall-clock read; simulated time is the tick counter"),
    ("thread_rng", "ambient RNG; use seeded dlp_common::SplitMix64"),
    ("from_entropy", "ambient RNG; use seeded dlp_common::SplitMix64"),
    ("rand::", "ambient RNG; use seeded dlp_common::SplitMix64"),
    (".par_iter", "unordered parallel reduction"),
    (".par_bridge", "unordered parallel reduction"),
    ("par_chunks", "unordered parallel reduction"),
];

/// Tokens additionally forbidden in the hot crates.
const HASH_TOKENS: &[(&str, &str)] = &[
    ("HashMap", "hash iteration order is unspecified; use BTreeMap or indexed Vec"),
    ("HashSet", "hash iteration order is unspecified; use BTreeSet or sorted Vec"),
];

/// The persistence layer, where every durable write must go through
/// the atomic-writer primitives.
const STORE_DIR: &str = "crates/core/src/store/";

/// Tokens forbidden in non-test code under [`STORE_DIR`].
const STORE_TOKENS: &[(&str, &str)] = &[
    ("fs::write", "bare write has no fsync/rename commit point; use atomic_write_file"),
    ("File::create", "bare creation bypasses the atomic writer; use AppendWriter"),
];

/// The lane-batched engine sources, held to the strictest rule set.
const BATCH_DIR: &str = "crates/sim/src/batch/";

/// Raw-source markers bracketing the tagged SIMD loops in the batch
/// engine's word-at-a-time passes. Comments are stripped before token
/// scanning, so the marker search runs on the raw source while the
/// `continue` search runs on the stripped code between the markers.
const SIMD_BEGIN: &str = "detlint: simd-loop-begin";
/// Closing marker; see [`SIMD_BEGIN`].
const SIMD_END: &str = "detlint: simd-loop-end";

/// Tokens forbidden in [`BATCH_DIR`]: anything that iterates lane
/// classes in other than ascending index order (or an unspecified
/// order) can desync the batched engines from their scalar twins while
/// every test still passes on symmetric workloads.
const BATCH_TOKENS: &[(&str, &str)] = &[
    (".rev()", "descending iteration reorders observable per-class steps"),
    ("sort_unstable", "unspecified tie order across lane classes"),
    ("swap_remove", "reorders lane-indexed storage"),
    (".keys()", "map iteration order hides the class visit order"),
    (".values()", "map iteration order hides the class visit order"),
];

/// One forbidden-token occurrence.
struct Finding {
    path: String,
    line: usize,
    token: &'static str,
    why: &'static str,
}

/// One `detlint.allow` entry.
struct AllowEntry {
    path: String,
    token: String,
    line: usize,
    used: bool,
}

/// How findings are rendered.
#[derive(Clone, Copy, PartialEq)]
pub enum Format {
    /// One line per violation on stderr — the interactive default.
    Human,
    /// A single JSON document on stdout (every finding, allowed or
    /// not, plus allowlist problems) for downstream tooling.
    Json,
    /// GitHub Actions workflow commands (`::error file=…,line=…::…`),
    /// so CI renders violations as inline source annotations.
    Github,
}

/// One finding in the `--format json` report.
#[derive(Serialize)]
struct JsonFinding {
    path: String,
    line: usize,
    token: String,
    why: String,
    allowed: bool,
}

/// The `--format json` document.
#[derive(Serialize)]
struct JsonReport {
    findings: Vec<JsonFinding>,
    problems: Vec<String>,
    allowed: usize,
    violations: usize,
}

/// Entry point: parse `[allowlist] [--format human|json|github]`.
pub fn main(args: &[String]) -> ExitCode {
    let mut allow = "detlint.allow".to_string();
    let mut format = Format::Human;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "detlint: --format expects human, json, or github (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            path => allow = path.to_string(),
        }
    }
    run(&allow, format)
}

/// Run the lint from the workspace root. Returns a failing exit code on
/// any unallowed finding, unjustified allowlist entry, or stale entry.
pub fn run(allow_path: &str, format: Format) -> ExitCode {
    let root = workspace_root();
    let (mut allow, mut errors) = parse_allowlist(&root.join(allow_path), allow_path);

    let mut findings = Vec::new();
    for krate in ENGINE_CRATES {
        let hot = HOT_CRATES.contains(krate);
        for file in rust_files(&root.join(krate)) {
            let rel = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    errors.push(format!("detlint: cannot read {rel}: {e}"));
                    continue;
                }
            };
            let code = strip_comments_and_strings(&source);
            scan(&rel, &code, AMBIENT_TOKENS, &mut findings);
            if hot {
                scan(&rel, &code, HASH_TOKENS, &mut findings);
            }
            if rel.starts_with(BATCH_DIR) {
                scan(&rel, &code, BATCH_TOKENS, &mut findings);
                scan_simd_continue(&rel, &source, &code, &mut findings);
            }
            if rel.starts_with(STORE_DIR) {
                scan(&rel, before_tests(&code), STORE_TOKENS, &mut findings);
            }
        }
    }

    let mut violations = 0usize;
    let mut allowed = 0usize;
    let mut classified: Vec<(&Finding, bool)> = Vec::with_capacity(findings.len());
    for f in &findings {
        let entry = allow.iter_mut().find(|e| e.path == f.path && e.token == f.token);
        let is_allowed = match entry {
            Some(entry) => {
                entry.used = true;
                allowed += 1;
                true
            }
            None => {
                violations += 1;
                false
            }
        };
        classified.push((f, is_allowed));
    }
    for e in &allow {
        if !e.used {
            errors.push(format!(
                "detlint: {allow_path}:{}: stale allowlist entry `{} {}` matches nothing",
                e.line, e.path, e.token
            ));
        }
    }

    match format {
        Format::Human => {
            for (f, is_allowed) in &classified {
                if !is_allowed {
                    eprintln!(
                        "detlint: {}:{}: forbidden `{}` ({})",
                        f.path, f.line, f.token, f.why
                    );
                }
            }
            for e in &errors {
                eprintln!("{e}");
            }
            println!(
                "detlint: {} findings ({allowed} allowlisted, {violations} violations, {} \
                 allowlist problems)",
                findings.len(),
                errors.len()
            );
        }
        Format::Json => {
            let report = JsonReport {
                findings: classified
                    .iter()
                    .map(|(f, is_allowed)| JsonFinding {
                        path: f.path.clone(),
                        line: f.line,
                        token: f.token.to_string(),
                        why: f.why.to_string(),
                        allowed: *is_allowed,
                    })
                    .collect(),
                problems: errors.clone(),
                allowed,
                violations,
            };
            println!("{}", dlp_common::json::to_string(&report));
        }
        Format::Github => {
            // Workflow commands render as inline annotations on the PR
            // diff; the run still fails through the exit code.
            for (f, is_allowed) in &classified {
                if !is_allowed {
                    println!(
                        "::error file={},line={},title=detlint::forbidden `{}` ({})",
                        f.path, f.line, f.token, f.why
                    );
                }
            }
            for e in &errors {
                println!("::error title=detlint allowlist::{e}");
            }
            println!(
                "detlint: {} findings ({allowed} allowlisted, {violations} violations, {} \
                 allowlist problems)",
                findings.len(),
                errors.len()
            );
        }
    }
    if violations == 0 && errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: this binary lives at `crates/xtask`, and CI runs
/// it through the `cargo xtask` alias from the root, so prefer the
/// manifest-relative location and fall back to the current directory.
pub(crate) fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// Parse `detlint.allow`: `<path> <token> # <justification>` per line.
fn parse_allowlist(path: &Path, display: &str) -> (Vec<AllowEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        // No allowlist is a valid (maximally strict) configuration.
        return (entries, errors);
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (spec, justification) = match line.split_once('#') {
            Some((s, j)) => (s.trim(), j.trim()),
            None => (line, ""),
        };
        let fields: Vec<&str> = spec.split_whitespace().collect();
        if fields.len() != 2 {
            errors.push(format!(
                "detlint: {display}:{line_no}: expected `<path> <token> # <justification>`"
            ));
            continue;
        }
        if justification.is_empty() {
            errors.push(format!(
                "detlint: {display}:{line_no}: allowlist entry `{} {}` has no justification \
                 comment",
                fields[0], fields[1]
            ));
            continue;
        }
        entries.push(AllowEntry {
            path: fields[0].to_string(),
            token: fields[1].to_string(),
            line: line_no,
            used: false,
        });
    }
    (entries, errors)
}

/// All `.rs` files under `dir`, sorted for deterministic reports.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// The prefix of `code` before its first `#[cfg(test)]` — the store
/// write-path rule exempts test modules, whose whole point is writing
/// corrupt bytes directly.
fn before_tests(code: &str) -> &str {
    code.find("#[cfg(test)]").map_or(code, |at| &code[..at])
}

/// Flag `continue` inside the tagged SIMD loops of a batch-engine file.
///
/// Markers live in comments (which [`strip_comments_and_strings`]
/// blanks), so marker state tracks the *raw* source while the token
/// search reads the stripped *code* of the same line — prose about
/// `continue` never fires, and a marker can't be smuggled inside a
/// string. The allowlist escape hatch works like every other rule: an
/// entry `<file> continue # <why the branch cannot reach a vector
/// lane>` admits one justified site.
fn scan_simd_continue(path: &str, raw: &str, code: &str, out: &mut Vec<Finding>) {
    let mut inside = false;
    for (i, (raw_line, code_line)) in raw.lines().zip(code.lines()).enumerate() {
        if raw_line.contains(SIMD_BEGIN) {
            inside = true;
        } else if raw_line.contains(SIMD_END) {
            inside = false;
        } else if inside && code_line.contains("continue") {
            out.push(Finding {
                path: path.to_string(),
                line: i + 1,
                token: "continue",
                why: "per-lane early-continue inside a tagged SIMD loop reintroduces \
                      control flow the autovectorizer cannot remove; select with a mask word",
            });
        }
    }
}

/// Record every line of `code` containing one of `tokens`.
fn scan(path: &str, code: &str, tokens: &[(&'static str, &'static str)], out: &mut Vec<Finding>) {
    for (i, line) in code.lines().enumerate() {
        for &(token, why) in tokens {
            if line.contains(token) {
                out.push(Finding { path: path.to_string(), line: i + 1, token, why });
            }
        }
    }
}

/// Replace comments and string/char literal contents with spaces,
/// preserving the line structure so findings keep real line numbers.
///
/// Handles line comments, nested block comments, plain and raw strings,
/// and char literals (distinguished from lifetimes by lookahead).
fn strip_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // Emit `c` verbatim when it shapes the layout, a space otherwise.
    fn blank(out: &mut String, c: char) {
        if c == '\n' { out.push('\n') } else { out.push(' ') }
    }
    while i < bytes.len() {
        let rest = &src[i..];
        if rest.starts_with("//") {
            let end = rest.find('\n').map_or(src.len(), |n| i + n);
            for c in src[i..end].chars() {
                blank(&mut out, c);
            }
            i = end;
        } else if rest.starts_with("/*") {
            let mut depth = 0usize;
            let mut j = i;
            while j < bytes.len() {
                let r = &src[j..];
                if r.starts_with("/*") {
                    depth += 1;
                    blank(&mut out, ' ');
                    blank(&mut out, ' ');
                    j += 2;
                } else if r.starts_with("*/") {
                    depth -= 1;
                    blank(&mut out, ' ');
                    blank(&mut out, ' ');
                    j += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    let c = r.chars().next().expect("in bounds");
                    blank(&mut out, c);
                    j += c.len_utf8();
                }
            }
            i = j;
        } else if rest.starts_with("r\"") || rest.starts_with("r#") {
            // Raw string: r"..." or r#"..."# with any number of hashes.
            let hashes = rest[1..].bytes().take_while(|&b| b == b'#').count();
            let open = 1 + hashes + 1; // r, hashes, quote
            let closer: String = std::iter::once('"').chain("#".repeat(hashes).chars()).collect();
            out.push('r');
            for _ in 0..hashes {
                out.push('#');
            }
            out.push('"');
            let body = &src[i + open..];
            let end = body.find(&closer).map_or(src.len(), |n| i + open + n);
            for c in src[i + open..end].chars() {
                blank(&mut out, c);
            }
            if end < src.len() {
                out.push_str(&closer);
                i = end + closer.len();
            } else {
                i = src.len();
            }
        } else if rest.starts_with('"') {
            out.push('"');
            let mut j = i + 1;
            while j < bytes.len() {
                let c = src[j..].chars().next().expect("in bounds");
                if c == '\\' {
                    blank(&mut out, ' ');
                    blank(&mut out, ' ');
                    j += 1 + src[j + 1..].chars().next().map_or(0, char::len_utf8);
                } else if c == '"' {
                    out.push('"');
                    j += 1;
                    break;
                } else {
                    blank(&mut out, c);
                    j += c.len_utf8();
                }
            }
            i = j;
        } else if let Some(after) = rest.strip_prefix('\'') {
            // Char literal vs lifetime: 'x' or '\...' is a literal.
            let is_char = after.starts_with('\\')
                || (after.chars().next().is_some_and(|c| c != '\'')
                    && after.chars().nth(1) == Some('\''));
            if is_char {
                out.push('\'');
                let mut j = i + 1;
                while j < bytes.len() {
                    let c = src[j..].chars().next().expect("in bounds");
                    if c == '\\' {
                        blank(&mut out, ' ');
                        blank(&mut out, ' ');
                        j += 1 + src[j + 1..].chars().next().map_or(0, char::len_utf8);
                    } else if c == '\'' {
                        out.push('\'');
                        j += 1;
                        break;
                    } else {
                        blank(&mut out, c);
                        j += c.len_utf8();
                    }
                }
                i = j;
            } else {
                out.push('\'');
                i += 1;
            }
        } else {
            let c = rest.chars().next().expect("in bounds");
            out.push(c);
            i += c.len_utf8();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r#"
// HashMap in a comment
let x = "HashMap in a string";
/* block HashMap /* nested HashMap */ still comment */
let m: HashMap<u32, u32> = HashMap::new();
"#;
        let code = strip_comments_and_strings(src);
        let hits: Vec<usize> = code
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("HashMap"))
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(hits, vec![5], "only the real code line fires:\n{code}");
    }

    #[test]
    fn lifetimes_do_not_confuse_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nlet t = Instant::now();\n";
        let code = strip_comments_and_strings(src);
        assert!(code.contains("Instant::now"));
        assert!(!code.contains("'x'") || code.contains("''"), "char body blanked");
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "let s = r#\"thread_rng\"#;\nthread_rng();\n";
        let code = strip_comments_and_strings(src);
        let hits = code.lines().filter(|l| l.contains("thread_rng")).count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn line_numbers_survive_stripping() {
        let src = "a\n/* x\ny */\nb\n";
        let code = strip_comments_and_strings(src);
        assert_eq!(code.lines().count(), src.lines().count());
    }

    #[test]
    fn batch_tokens_catch_lane_order_dependence() {
        let mut findings = Vec::new();
        let code = "for c in (0..nc).rev() {\n}\nlive.swap_remove(i);\n";
        scan("crates/sim/src/batch/mimd.rs", code, BATCH_TOKENS, &mut findings);
        let tokens: Vec<&str> = findings.iter().map(|f| f.token).collect();
        assert_eq!(tokens, vec![".rev()", "swap_remove"]);
    }

    #[test]
    fn simd_continue_fires_only_between_markers() {
        let raw = "loop {\n    continue;\n}\n// detlint: simd-loop-begin\nfor c in 0..nc {\n    \
                   if skip { continue; }\n    // a comment about continue\n}\n\
                   // detlint: simd-loop-end\nif x { continue; }\n";
        let code = strip_comments_and_strings(raw);
        let mut findings = Vec::new();
        scan_simd_continue("crates/sim/src/batch/mask.rs", raw, &code, &mut findings);
        assert_eq!(findings.len(), 1, "only the in-marker code continue fires");
        assert_eq!(findings[0].line, 6);
        assert_eq!(findings[0].token, "continue");
    }

    #[test]
    fn store_rule_exempts_test_modules() {
        let code = "std::fs::write(&tmp, data)?;\n#[cfg(test)]\nmod tests {\n    \
                    std::fs::write(&p, b\"junk\");\n    let f = File::create(&p);\n}\n";
        let mut findings = Vec::new();
        scan("crates/core/src/store/mod.rs", before_tests(code), STORE_TOKENS, &mut findings);
        assert_eq!(findings.len(), 1, "only the pre-test write fires");
        assert_eq!(findings[0].token, "fs::write");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn scan_reports_token_and_line() {
        let mut findings = Vec::new();
        scan("f.rs", "ok\nlet t = SystemTime::now();\n", AMBIENT_TOKENS, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].token, "SystemTime");
    }
}
