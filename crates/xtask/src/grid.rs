//! The shared grid-walking harness behind `verify-grid` and
//! `analyze-grid`: both commands lower every suite kernel for every
//! published machine configuration through `prepare_kernel`, so the
//! walk — kernel × configuration order, record count, per-lowering
//! wall-clock — lives here once and the two commands differ only in
//! what they do with each prepared plan.
//!
//! * `verify-grid` asks the legality question: did the static verifier
//!   accept every lowering?
//! * `analyze-grid` asks the semantic ones: what `W*` warnings did the
//!   analyzer attach (DESIGN.md §13), what is the sound cycle bound,
//!   and how long did analysis take per kernel? `--deny-warnings`
//!   makes any warning fatal, `--budget N` pins a ceiling, and
//!   `--json <path>` writes the machine-readable artifact CI uploads.

use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;

/// Records per cell — matches the experiment grid's default.
const RECORDS: usize = 64;

/// One lowering of the kernel × configuration grid.
pub struct GridCell {
    /// Kernel name.
    pub kernel: &'static str,
    /// Configuration display name.
    pub config: String,
    /// The prepared plan, or the verifier/scheduler rejection.
    pub result: Result<dlp_core::PreparedProgram, dlp_common::DlpError>,
    /// Host wall-clock spent lowering + analyzing this cell, in
    /// milliseconds.
    pub prepare_ms: f64,
}

/// Lower the full grid, timing each `prepare_kernel` call.
pub fn walk_grid() -> Vec<GridCell> {
    let params = dlp_core::ExperimentParams::default();
    let kernels = dlp_kernels::suite();
    let mut cells = Vec::new();
    for config in dlp_core::MachineConfig::ALL {
        for kernel in &kernels {
            let started = Instant::now();
            let result =
                dlp_core::prepare_kernel(kernel.as_ref(), config.mechanisms(), RECORDS, &params);
            cells.push(GridCell {
                kernel: kernel.name(),
                config: config.to_string(),
                result,
                prepare_ms: started.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    cells
}

/// `verify-grid`: the static verifier inside `prepare_kernel` must
/// accept every lowering of the grid.
pub fn verify_grid() -> ExitCode {
    let cells = walk_grid();
    let mut verified = 0usize;
    let mut failures = 0usize;
    for cell in &cells {
        match &cell.result {
            Ok(_) => verified += 1,
            Err(e) => {
                failures += 1;
                eprintln!("verify-grid: {} on {}: {e}", cell.kernel, cell.config);
            }
        }
    }
    println!(
        "verify-grid: {verified} lowerings statically verified ({} kernels x {} configs)",
        dlp_kernels::suite().len(),
        dlp_core::MachineConfig::ALL.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("verify-grid: {failures} lowerings rejected");
        ExitCode::FAILURE
    }
}

/// One analyzer finding, flattened for the JSON artifact.
#[derive(Serialize)]
struct WarningRow {
    code: String,
    span: String,
    detail: String,
}

/// One analyzed grid cell in the JSON artifact.
#[derive(Serialize)]
struct AnalyzedCell {
    kernel: String,
    config: String,
    prepare_ms: f64,
    bound_cycles: u64,
    estimate_ticks: u64,
    warnings: Vec<WarningRow>,
}

/// The `analyze-grid` artifact: every cell plus the headline counters
/// the CI gate reads.
#[derive(Serialize)]
struct AnalyzeReport {
    records: usize,
    lowerings: usize,
    failures: usize,
    total_warnings: usize,
    cells: Vec<AnalyzedCell>,
}

/// `analyze-grid`: run the semantic analyzer over the full grid and
/// report warnings, sound cycle bounds, and per-kernel analysis time.
pub fn analyze_grid(args: &[String]) -> ExitCode {
    let mut deny_warnings = false;
    let mut budget: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--budget" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => budget = Some(n),
                None => {
                    eprintln!("analyze-grid: --budget needs a count");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("analyze-grid: --json needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("analyze-grid: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let cells = walk_grid();
    let mut report = AnalyzeReport {
        records: RECORDS,
        lowerings: cells.len(),
        failures: 0,
        total_warnings: 0,
        cells: Vec::with_capacity(cells.len()),
    };
    for cell in &cells {
        match &cell.result {
            Ok(prepared) => {
                let analysis = prepared.analysis();
                for w in &analysis.warnings {
                    println!("analyze-grid: {} on {}: {w}", cell.kernel, cell.config);
                }
                report.total_warnings += analysis.warnings.len();
                report.cells.push(AnalyzedCell {
                    kernel: cell.kernel.to_string(),
                    config: cell.config.clone(),
                    prepare_ms: cell.prepare_ms,
                    bound_cycles: prepared.bound_cycles(RECORDS),
                    estimate_ticks: prepared.estimate_ticks(RECORDS),
                    warnings: analysis
                        .warnings
                        .iter()
                        .map(|w| WarningRow {
                            code: w.code.to_string(),
                            span: w.span.clone(),
                            detail: w.detail.clone(),
                        })
                        .collect(),
                });
            }
            Err(e) => {
                report.failures += 1;
                eprintln!("analyze-grid: {} on {}: lowering failed: {e}", cell.kernel, cell.config);
            }
        }
    }

    // Per-kernel analysis time: the sum over its configurations, so a
    // pathological kernel (schedule blowup, interval divergence) shows
    // up by name rather than hiding in the grid total.
    let kernels = dlp_kernels::suite();
    for k in &kernels {
        let ms: f64 =
            cells.iter().filter(|c| c.kernel == k.name()).map(|c| c.prepare_ms).sum();
        println!("analyze-grid: {:<16} analyzed in {ms:8.2} ms", k.name());
    }
    println!(
        "analyze-grid: {} lowerings, {} warnings, {} failures",
        report.lowerings, report.total_warnings, report.failures
    );

    if let Some(path) = &json_path {
        let json = dlp_common::json::to_string(&report);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("analyze-grid: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("analyze-grid: artifact written to {path}");
    }

    let ceiling = if deny_warnings { Some(0) } else { budget };
    if let Some(max) = ceiling {
        if report.total_warnings > max {
            eprintln!(
                "analyze-grid: {} warnings exceed the budget of {max}",
                report.total_warnings
            );
            return ExitCode::FAILURE;
        }
    }
    if report.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
