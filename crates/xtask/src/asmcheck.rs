//! `cargo xtask asmcheck` — the autovectorization gate for the tagged
//! word-at-a-time passes in `crates/sim/src/batch/mask.rs`.
//!
//! The batch engine's bit-identity contract is cheap only because the
//! mask passes compile to SIMD: they are written branch-free (detlint's
//! `simd-loop` rule keeps them that way) precisely so LLVM's
//! autovectorizer can turn each lane loop into vector arithmetic. That
//! property is invisible to `cargo test` — a stray bounds check or a
//! per-lane branch silently degrades every pass to scalar code while
//! all results stay bit-identical. This check makes the property a CI
//! fact instead of a hope:
//!
//! 1. Emit release assembly for the `trips-sim` crate alone
//!    (`cargo rustc -p trips-sim --release -- --emit asm`) into a
//!    dedicated target directory (`target/asmcheck`) so the normal
//!    build cache is untouched. One codegen unit keeps every symbol in
//!    a single `.s` file; on x86-64 the baseline is raised to
//!    `x86-64-v3` (AVX2), the floor CI's runners and any development
//!    box this decade actually execute — the gate verifies the loops
//!    *are vectorizable at that floor*, which is what the branch-free
//!    contract promises.
//! 2. Every tagged pass is `#[inline(never)]`, so each has its own
//!    mangled symbol containing the function name as a substring. The
//!    scanner slices the assembly into per-symbol bodies and counts
//!    vector-register references (`xmm`/`ymm`/`zmm`, or NEON lane
//!    suffixes on aarch64) in each.
//! 3. A tagged pass whose body contains *no* vector op fails the
//!    check, with a per-pass report either way.

use std::process::{Command, ExitCode};

/// The tagged SIMD passes. Each is `#[inline(never)]`, so each owns a
/// symbol; mangled Rust symbols keep the function name as a substring.
const TAGGED: &[&str] = &[
    "simd_latch_lanes",
    "simd_select_lanes",
    "simd_add_one_u32",
    "simd_sub_one_u32",
    "simd_add_one_u64",
    "simd_max_tick",
    "simd_over_mask",
    "simd_eval_lanes",
];

/// Emit release assembly for `trips-sim` and require every tagged pass
/// to contain vector instructions.
pub fn run() -> ExitCode {
    let root = crate::detlint::workspace_root();
    let target = root.join("target").join("asmcheck");
    let mut cmd = Command::new("cargo");
    cmd.current_dir(&root)
        .env("CARGO_TARGET_DIR", &target)
        .args(["rustc", "-p", "trips-sim", "--release", "--quiet", "--"])
        .args(["--emit", "asm", "-Ccodegen-units=1"]);
    if cfg!(target_arch = "x86_64") {
        cmd.arg("-Ctarget-cpu=x86-64-v3");
    }
    match cmd.status() {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("asmcheck: cargo rustc failed with {s}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("asmcheck: cannot spawn cargo: {e}");
            return ExitCode::FAILURE;
        }
    }

    let Some(asm_file) = newest_asm(&target.join("release").join("deps")) else {
        eprintln!("asmcheck: no trips_sim-*.s emitted under target/asmcheck/release/deps");
        return ExitCode::FAILURE;
    };
    let asm = match std::fs::read_to_string(&asm_file) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("asmcheck: cannot read {}: {e}", asm_file.display());
            return ExitCode::FAILURE;
        }
    };

    let counts = vector_counts(&asm);
    let mut failures = 0usize;
    for &name in TAGGED {
        match counts.get(name) {
            Some(&(vector, total)) if vector > 0 => {
                println!("asmcheck: {name}: {vector} vector ops / {total} insns");
            }
            Some(&(_, total)) => {
                failures += 1;
                eprintln!(
                    "asmcheck: {name}: NO vector ops in {total} insns — the pass fell back \
                     to scalar code (a per-lane branch or bounds check defeated the \
                     autovectorizer?)"
                );
            }
            None => {
                failures += 1;
                eprintln!("asmcheck: {name}: symbol not found in {}", asm_file.display());
            }
        }
    }
    if failures == 0 {
        println!("asmcheck: all {} tagged passes vectorize", TAGGED.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("asmcheck: {failures} tagged passes failed");
        ExitCode::FAILURE
    }
}

/// The most recently written `trips_sim-*.s` under `deps` (stale dumps
/// from earlier source revisions may coexist in the cache directory).
fn newest_asm(deps: &std::path::Path) -> Option<std::path::PathBuf> {
    let entries = std::fs::read_dir(deps).ok()?;
    let mut best: Option<(std::time::SystemTime, std::path::PathBuf)> = None;
    for entry in entries.flatten() {
        let p = entry.path();
        let name = p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if !(name.starts_with("trips_sim-") && name.ends_with(".s")) {
            continue;
        }
        let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else { continue };
        if best.as_ref().is_none_or(|(t, _)| modified > *t) {
            best = Some((modified, p));
        }
    }
    best.map(|(_, p)| p)
}

/// Per-tagged-symbol `(vector instruction lines, total instruction
/// lines)`, sliced out of the emitted assembly. A function body starts
/// at a column-0 label whose name contains the tagged substring and
/// ends at `.cfi_endproc` or the next column-0 label.
fn vector_counts(asm: &str) -> std::collections::BTreeMap<&'static str, (usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    let mut current: Option<&'static str> = None;
    for line in asm.lines() {
        let trimmed = line.trim_end();
        let is_label = trimmed.ends_with(':')
            && !trimmed.starts_with(|c: char| c.is_whitespace())
            && !trimmed.starts_with('.');
        if is_label {
            current = TAGGED.iter().copied().find(|n| trimmed.contains(n));
            continue;
        }
        if trimmed.contains(".cfi_endproc") {
            current = None;
            continue;
        }
        let Some(name) = current else { continue };
        // Count instruction lines only: indented and not a directive.
        let body = line.trim_start();
        if body.is_empty() || body.starts_with('.') || line == body {
            continue;
        }
        let entry = counts.entry(name).or_insert((0usize, 0usize));
        entry.1 += 1;
        if is_vector_line(body) {
            entry.0 += 1;
        }
    }
    counts
}

/// Does one instruction line touch a vector register? x86: any
/// `xmm`/`ymm`/`zmm` operand. aarch64: a NEON arrangement suffix like
/// `v7.2d` or `v0.16b`.
fn is_vector_line(line: &str) -> bool {
    if line.contains("xmm") || line.contains("ymm") || line.contains("zmm") {
        return true;
    }
    [".2d", ".4s", ".2s", ".8h", ".4h", ".16b", ".8b"]
        .iter()
        .any(|suffix| line.contains(suffix))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASM: &str = "\t.text\n\
_ZN9trips_sim5batch4mask16simd_latch_lanes17h0123456789abcdefE:\n\
\t.cfi_startproc\n\
\tvmovdqu (%rdi), %ymm0\n\
\tvpand %ymm1, %ymm0, %ymm0\n\
\tretq\n\
\t.cfi_endproc\n\
_ZN9trips_sim5batch4mask15simd_add_one_u3217hfedcba9876543210E:\n\
\t.cfi_startproc\n\
\taddl $1, (%rdi)\n\
\tretq\n\
\t.cfi_endproc\n";

    #[test]
    fn bodies_are_sliced_per_symbol() {
        let counts = vector_counts(ASM);
        assert_eq!(counts.get("simd_latch_lanes"), Some(&(2, 3)));
        assert_eq!(counts.get("simd_add_one_u32"), Some(&(0, 2)));
    }

    #[test]
    fn neon_arrangements_count_as_vector() {
        assert!(is_vector_line("add v0.2d, v1.2d, v2.2d"));
        assert!(is_vector_line("vpaddq %xmm0, %xmm1, %xmm2"));
        assert!(!is_vector_line("addq %rax, %rbx"));
    }
}
