//! # trips-noc
//!
//! The lightweight routed operand network connecting the ALU array, the
//! register-file banks on the top edge, and the memory interface (L1 banks
//! and SMC streaming channels) on the left edge.
//!
//! The paper's baseline assumes a mesh interconnect with a hop delay of half
//! a cycle between adjacent ALUs (§5.2). This crate models that mesh with
//! **dimension-order (Y-then-X) routing** and **per-link serialization**:
//! each unidirectional link accepts a bounded number of messages per tick,
//! and later messages queue behind earlier ones. That captures the two
//! effects the paper's results depend on — distance (placement quality,
//! MIMD load routing) and contention (operand fan-out, memory-port
//! hotspots) — without simulating individual flits.
//!
//! The router is a pure *timing* component: the simulator keeps message
//! payloads, the router answers "when does it arrive?".
//!
//! # Example
//!
//! ```
//! use trips_noc::{MeshRouter, Endpoint};
//! use dlp_common::{Coord, GridShape, NetParams};
//!
//! let mut net = MeshRouter::new(GridShape::new(8, 8), NetParams::default());
//! let a = Endpoint::Node(Coord::new(0, 0));
//! let b = Endpoint::Node(Coord::new(2, 3));
//! let arrival = net.send(a, b, 0);
//! assert_eq!(arrival, 5); // 5 hops × 1 tick (half-cycle) each
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panicking escape hatches are banned outside tests: a bad cell or an
// injected fault must surface as a structured `DlpError`, never tear
// down a whole sweep (CI promotes these to errors).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use dlp_common::{Coord, FaultInjector, FaultSite, GridShape, NetParams, Tick};
use serde::{Deserialize, Serialize};

/// A source or destination attached to the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// An ALU node on the array.
    Node(Coord),
    /// A register-file bank above column `col` of the top row.
    RegBank(u8),
    /// A memory port (L1 bank / SMC channel head) left of column 0 in `row`.
    MemPort(u8),
}

impl Endpoint {
    /// The grid coordinate where this endpoint's traffic enters/exits the
    /// mesh, plus the extra edge hops to reach it.
    fn attach(self) -> (Coord, u32) {
        match self {
            Endpoint::Node(c) => (c, 0),
            Endpoint::RegBank(col) => (Coord::new(0, col), 1),
            Endpoint::MemPort(row) => (Coord::new(row, 0), 1),
        }
    }
}

/// Direction of a unidirectional mesh link leaving a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Dir {
    North = 0,
    South = 1,
    East = 2,
    West = 3,
}

/// Links leaving each node (one per [`Dir`]).
const LINKS_PER_NODE: usize = 4;

/// Reservation state for one link: the latest tick with traffic and how many
/// messages already departed on that tick.
///
/// The all-zero state is the "never used" state: `tick: 0, count: 0` never
/// blocks or delays a message (a zero count can't fill a slot), so a
/// pre-filled flat table behaves exactly like an absent hash entry.
#[derive(Clone, Copy, Debug, Default)]
struct LinkUse {
    tick: Tick,
    count: u32,
}

/// Cumulative router statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages routed.
    pub msgs: u64,
    /// Total hops traversed (including edge attach hops).
    pub hops: u64,
    /// Total ticks messages spent queued behind busy links.
    pub queue_ticks: u64,
}

/// The mesh operand router.
///
/// Messages are routed Y-first (within the source column to the destination
/// row) then X (along the row). Each link serializes: with the default
/// [`NetParams`], one message per tick per link; later messages wait.
#[derive(Clone, Debug)]
pub struct MeshRouter {
    grid: GridShape,
    params: NetParams,
    /// Per-link reservation state in a flat table indexed by
    /// `node_index * LINKS_PER_NODE + direction` — the per-hop path is a
    /// dense array access, never a hash lookup.
    usage: Vec<LinkUse>,
    stats: NetStats,
}

impl MeshRouter {
    /// Create a router for `grid` with the given parameters.
    #[must_use]
    pub fn new(grid: GridShape, params: NetParams) -> Self {
        MeshRouter {
            grid,
            params,
            usage: vec![LinkUse::default(); grid.nodes() * LINKS_PER_NODE],
            stats: NetStats::default(),
        }
    }

    /// The grid this router serves.
    #[must_use]
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Forget link occupancy and statistics (used between kernel runs).
    ///
    /// Clears the link table in place; the storage is reused across runs.
    pub fn reset(&mut self) {
        self.usage.fill(LinkUse::default());
        self.stats = NetStats::default();
    }

    /// Number of hops between two endpoints (no contention).
    #[must_use]
    pub fn distance(&self, from: Endpoint, to: Endpoint) -> u32 {
        let (a, ea) = from.attach();
        let (b, eb) = to.attach();
        debug_assert!(self.grid.contains(a) && self.grid.contains(b));
        a.manhattan(b) + ea + eb
    }

    /// Route a message injected at `now`, returning its arrival tick.
    ///
    /// Reserves capacity on every link along the dimension-order path, so
    /// concurrent messages sharing links are serialized.
    pub fn send(&mut self, from: Endpoint, to: Endpoint, now: Tick) -> Tick {
        let (src, src_edge) = from.attach();
        let (dst, dst_edge) = to.attach();
        debug_assert!(self.grid.contains(src), "source {src} off-grid");
        debug_assert!(self.grid.contains(dst), "destination {dst} off-grid");

        let mut t = now + Tick::from(src_edge) * self.params.hop_ticks;
        let mut at = src;
        let mut hops = src_edge + dst_edge;

        // Y first: move within the column to the destination row.
        while at.row != dst.row {
            let dir = if dst.row > at.row { Dir::South } else { Dir::North };
            t = self.traverse(at, dir, t);
            at = match dir {
                Dir::South => Coord::new(at.row + 1, at.col),
                Dir::North => Coord::new(at.row - 1, at.col),
                _ => unreachable!(),
            };
            hops += 1;
        }
        // Then X along the row.
        while at.col != dst.col {
            let dir = if dst.col > at.col { Dir::East } else { Dir::West };
            t = self.traverse(at, dir, t);
            at = match dir {
                Dir::East => Coord::new(at.row, at.col + 1),
                Dir::West => Coord::new(at.row, at.col - 1),
                _ => unreachable!(),
            };
            hops += 1;
        }
        t += Tick::from(dst_edge) * self.params.hop_ticks;

        self.stats.msgs += 1;
        self.stats.hops += u64::from(hops);
        t
    }

    /// Route a message with fault injection: each routing attempt may be
    /// dropped or corrupted per the injector's plan; link-level CRC detects
    /// either, NACKs, and the message is replayed after a bounded
    /// exponential backoff. Every replay re-reserves links through
    /// [`MeshRouter::send`], so retry traffic contends honestly.
    ///
    /// With the injector disabled this is exactly [`MeshRouter::send`] —
    /// no RNG draws, bit-identical timing. If the retry budget exhausts,
    /// the injector latches a fatal fault (the engines surface it as
    /// `DlpError::FaultUnrecoverable`) and the last attempt's arrival is
    /// returned so the caller can keep unwinding deterministically.
    pub fn send_faulty(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        now: Tick,
        inj: &mut FaultInjector,
    ) -> Tick {
        if !inj.enabled() {
            return self.send(from, to, now);
        }
        let plan = inj.plan();
        let mut inject = now;
        let mut attempt = 0u32;
        let mut first_arrive = None;
        loop {
            let arrive = self.send(from, to, inject);
            let base = *first_arrive.get_or_insert(arrive);
            // One roll per configured hazard per attempt, in fixed order.
            let dropped = inj.roll(plan.noc_drop);
            let corrupt = inj.roll(plan.noc_corrupt);
            if !dropped && !corrupt {
                if attempt > 0 {
                    inj.recovered(u64::from(attempt), u64::from(attempt), arrive - base);
                }
                return arrive;
            }
            attempt += 1;
            if attempt > plan.max_retries {
                inj.recovered(u64::from(attempt), u64::from(attempt - 1), arrive - base);
                inj.escalate(FaultSite::NocLink, arrive, attempt - 1);
                return arrive;
            }
            // NACK observed at the (would-be) arrival tick; replay after a
            // bounded exponential backoff.
            inject = arrive + inj.backoff(attempt);
        }
    }

    /// Traverse one link: wait for a departure slot, reserve it, advance
    /// time. A link carries at most `link_msgs_per_tick` messages per tick.
    fn traverse(&mut self, at: Coord, dir: Dir, ready: Tick) -> Tick {
        let cap = self.params.link_msgs_per_tick.max(1);
        let entry = &mut self.usage[self.grid.index(at) * LINKS_PER_NODE + dir as usize];
        let mut depart = ready;
        if entry.tick >= ready && entry.count >= cap {
            depart = entry.tick + 1; // slot on `entry.tick` is full
        } else if entry.tick > ready {
            depart = entry.tick; // join the latest partially filled slot
        }
        if depart == entry.tick {
            entry.count += 1;
        } else {
            *entry = LinkUse { tick: depart, count: 1 };
        }
        self.stats.queue_ticks += depart - ready;
        depart + self.params.hop_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn router() -> MeshRouter {
        MeshRouter::new(GridShape::new(8, 8), NetParams::default())
    }

    #[test]
    fn same_node_is_free() {
        let mut net = router();
        let n = Endpoint::Node(Coord::new(3, 3));
        assert_eq!(net.send(n, n, 10), 10);
        assert_eq!(net.distance(n, n), 0);
    }

    #[test]
    fn uncontended_latency_is_manhattan() {
        let mut net = router();
        let a = Endpoint::Node(Coord::new(0, 0));
        let b = Endpoint::Node(Coord::new(7, 7));
        assert_eq!(net.send(a, b, 0), 14);
        assert_eq!(net.stats().hops, 14);
        assert_eq!(net.stats().queue_ticks, 0);
    }

    #[test]
    fn edge_endpoints_add_a_hop() {
        let mut net = router();
        let rb = Endpoint::RegBank(2);
        let n = Endpoint::Node(Coord::new(0, 2));
        assert_eq!(net.distance(rb, n), 1);
        assert_eq!(net.send(rb, n, 0), 1);

        let mp = Endpoint::MemPort(4);
        let n2 = Endpoint::Node(Coord::new(4, 0));
        assert_eq!(net.distance(mp, n2), 1);
        assert_eq!(net.send(mp, n2, 0), 1);
    }

    #[test]
    fn contention_serializes_shared_link() {
        let mut net = router();
        let a = Endpoint::Node(Coord::new(0, 0));
        let b = Endpoint::Node(Coord::new(0, 1));
        // Two messages over the same single link, same tick.
        let t1 = net.send(a, b, 0);
        let t2 = net.send(a, b, 0);
        assert_eq!(t1, 1);
        assert_eq!(t2, 2, "second message must queue behind the first");
        assert_eq!(net.stats().queue_ticks, 1);
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let mut net = router();
        let t1 = net.send(Endpoint::Node(Coord::new(0, 0)), Endpoint::Node(Coord::new(0, 1)), 0);
        let t2 = net.send(Endpoint::Node(Coord::new(5, 5)), Endpoint::Node(Coord::new(5, 6)), 0);
        assert_eq!(t1, 1);
        assert_eq!(t2, 1);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut net = router();
        let a = Endpoint::Node(Coord::new(0, 0));
        let b = Endpoint::Node(Coord::new(0, 1));
        net.send(a, b, 0);
        net.reset();
        assert_eq!(net.send(a, b, 0), 1);
        assert_eq!(net.stats().msgs, 1);
    }

    #[test]
    fn y_then_x_path_reserves_column_first() {
        let mut net = router();
        // (0,0) -> (1,1): goes south through ((0,0),South) then east.
        net.send(Endpoint::Node(Coord::new(0, 0)), Endpoint::Node(Coord::new(1, 1)), 0);
        // A second message using the same southward link queues...
        let t = net.send(Endpoint::Node(Coord::new(0, 0)), Endpoint::Node(Coord::new(1, 0)), 0);
        assert_eq!(t, 2);
    }

    #[test]
    fn faulty_send_with_zero_plan_matches_clean_send() {
        use dlp_common::FaultPlan;
        let mut clean = router();
        let mut faulty = router();
        let mut inj = FaultPlan::none().injector(1234);
        let a = Endpoint::Node(Coord::new(0, 0));
        let b = Endpoint::Node(Coord::new(3, 5));
        for now in 0..50 {
            assert_eq!(clean.send(a, b, now), faulty.send_faulty(a, b, now, &mut inj));
        }
        assert_eq!(clean.stats(), faulty.stats());
        assert_eq!(inj.stats(), dlp_common::FaultStats::default());
    }

    #[test]
    fn dropped_messages_are_replayed_with_backoff() {
        use dlp_common::{FaultPlan, FaultRate};
        let mut plan = FaultPlan::none();
        plan.noc_drop = FaultRate::per_million(400_000);
        let mut net = router();
        let mut inj = plan.injector(7);
        let a = Endpoint::Node(Coord::new(0, 0));
        let b = Endpoint::Node(Coord::new(7, 7));
        let mut recovered_any = false;
        for _ in 0..200 {
            net.reset();
            let t = net.send_faulty(a, b, 0, &mut inj);
            assert!(t >= 14, "arrival {t} can never beat the clean path");
            if t > 14 {
                recovered_any = true;
            }
            if inj.fatal().is_some() {
                break;
            }
        }
        assert!(recovered_any, "40% drop rate must force at least one replay");
        assert!(inj.stats().injected > 0);
        assert_eq!(inj.stats().injected, inj.stats().retries + inj.fatal().iter().count() as u64);
    }

    #[test]
    fn certain_drop_exhausts_budget_and_escalates() {
        use dlp_common::{FaultPlan, FaultRate};
        let mut plan = FaultPlan::none();
        plan.noc_drop = FaultRate::per_million(1_000_000);
        plan.max_retries = 3;
        let mut net = router();
        let mut inj = plan.injector(0);
        let a = Endpoint::Node(Coord::new(0, 0));
        let b = Endpoint::Node(Coord::new(1, 1));
        let t = net.send_faulty(a, b, 0, &mut inj);
        let fatal = inj.fatal().expect("certain drop must escalate");
        assert_eq!(fatal.site, FaultSite::NocLink);
        assert_eq!(fatal.retries, 3);
        assert!(t > 0);
        // Escalated: injection stops, subsequent sends are clean.
        let t2 = net.send_faulty(a, b, 100, &mut inj);
        assert_eq!(t2, net.distance(a, b) as u64 + 100);
    }

    proptest! {
        #[test]
        fn arrival_never_precedes_distance(
            r1 in 0u8..8, c1 in 0u8..8, r2 in 0u8..8, c2 in 0u8..8, now in 0u64..1000
        ) {
            let mut net = router();
            let a = Endpoint::Node(Coord::new(r1, c1));
            let b = Endpoint::Node(Coord::new(r2, c2));
            let arr = net.send(a, b, now);
            prop_assert!(arr >= now + u64::from(net.distance(a, b)));
        }

        #[test]
        fn repeated_sends_monotonically_arrive(
            r in 0u8..8, c in 0u8..8, n in 1usize..20
        ) {
            let mut net = router();
            let a = Endpoint::Node(Coord::new(0, 0));
            let b = Endpoint::Node(Coord::new(r, c));
            let mut last = 0;
            for _ in 0..n {
                let t = net.send(a, b, 0);
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}
