//! The kernel IR data structures.

use std::fmt;

use dlp_common::{DlpError, Value};
use serde::{Deserialize, Serialize};
use trips_isa::{OpRole, Opcode};

/// The application domain a kernel belongs to (Table 1's grouping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// DSP / multimedia processing.
    Multimedia,
    /// Scientific codes.
    Scientific,
    /// Network processing and security.
    Network,
    /// Real-time graphics.
    Graphics,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Multimedia => write!(f, "multimedia"),
            Domain::Scientific => write!(f, "scientific"),
            Domain::Network => write!(f, "network"),
            Domain::Graphics => write!(f, "graphics"),
        }
    }
}

/// A kernel's control-behavior class (the paper's Figure 1 taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlClass {
    /// Figure 1a: a straight-line instruction sequence.
    Straight,
    /// Figure 1b: an internal loop with static bounds (unrolled in the DAG).
    FixedLoop {
        /// The static trip count.
        iters: u32,
    },
    /// Figure 1c: data-dependent trip count (unrolled to `max_iters` with
    /// select merges in the DAG; a MIMD machine executes only the live
    /// iterations).
    VariableLoop {
        /// Maximum trip count the DAG is unrolled to.
        max_iters: u32,
    },
}

impl ControlClass {
    /// Whether the kernel prefers fine-grain MIMD execution (data-dependent
    /// branching, per §2.1.2).
    #[must_use]
    pub fn is_data_dependent(self) -> bool {
        matches!(self, ControlClass::VariableLoop { .. })
    }

    /// The Table 2 "Loop bounds" cell.
    #[must_use]
    pub fn loop_bounds_label(self) -> String {
        match self {
            ControlClass::Straight => "-".to_string(),
            ControlClass::FixedLoop { iters } => iters.to_string(),
            ControlClass::VariableLoop { .. } => "Variable".to_string(),
        }
    }
}

/// Reference to an IR node (index into [`KernelIr::nodes`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IrRef(pub(crate) u32);

impl IrRef {
    /// The node index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A lookup table of indexed named constants (§2.1.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableSpec {
    /// Human-readable name ("sbox0", "bone matrices").
    pub name: String,
    /// Table contents; entry *i* is returned by a `TableRead` with index
    /// *i*.
    pub entries: Vec<Value>,
}

/// One IR operation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum IrOp {
    /// Word `i` of the kernel's input record (a regular, streamed access).
    RecordIn(u16),
    /// A named scalar constant (index into the kernel's constant pool);
    /// lives in the register file, or in revitalized operands on S-O
    /// machines.
    Const(u16),
    /// A literal produced inside the kernel (an immediate).
    Imm(Value),
    /// An indexed named constant: entry `index` of `table`.
    TableRead {
        /// Which table.
        table: u16,
        /// Node computing the entry index.
        index: IrRef,
    },
    /// An irregular memory access at a kernel-computed word address.
    IrregularLoad {
        /// Node computing the word address.
        addr: IrRef,
    },
    /// A unary ALU operation.
    Un {
        /// Opcode (must be unary).
        op: Opcode,
        /// Operand.
        a: IrRef,
    },
    /// A binary ALU operation.
    Bin {
        /// Opcode.
        op: Opcode,
        /// Left operand.
        a: IrRef,
        /// Right operand.
        b: IrRef,
    },
    /// Select: `p ? a : b` (the predication idiom on SIMD machines).
    Sel {
        /// Predicate.
        p: IrRef,
        /// Value when true.
        a: IrRef,
        /// Value when false.
        b: IrRef,
    },
}

/// An IR node: the operation plus its overhead/useful classification.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IrNode {
    /// The operation.
    pub op: IrOp,
    /// Whether this op counts toward the ops/cycle metric.
    pub role: OpRole,
}

/// A complete kernel: one instance of the data-parallel loop body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelIr {
    pub(crate) name: String,
    pub(crate) domain: Domain,
    pub(crate) nodes: Vec<IrNode>,
    pub(crate) outputs: Vec<(u16, IrRef)>,
    pub(crate) record_in_words: u16,
    pub(crate) record_out_words: u16,
    pub(crate) constants: Vec<(String, Value)>,
    pub(crate) tables: Vec<TableSpec>,
    pub(crate) control: ControlClass,
}

impl KernelIr {
    /// Kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Application domain.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The IR nodes in topological (construction) order.
    #[must_use]
    pub fn nodes(&self) -> &[IrNode] {
        &self.nodes
    }

    /// Record outputs: `(word index, value node)` pairs.
    #[must_use]
    pub fn outputs(&self) -> &[(u16, IrRef)] {
        &self.outputs
    }

    /// Input record size in 64-bit words.
    #[must_use]
    pub fn record_in_words(&self) -> u16 {
        self.record_in_words
    }

    /// Output record size in 64-bit words.
    #[must_use]
    pub fn record_out_words(&self) -> u16 {
        self.record_out_words
    }

    /// The named scalar constant pool.
    #[must_use]
    pub fn constants(&self) -> &[(String, Value)] {
        &self.constants
    }

    /// The lookup tables (indexed named constants).
    #[must_use]
    pub fn tables(&self) -> &[TableSpec] {
        &self.tables
    }

    /// Control-behavior class.
    #[must_use]
    pub fn control(&self) -> ControlClass {
        self.control
    }

    /// Total lookup-table entries across all tables.
    #[must_use]
    pub fn table_entries(&self) -> usize {
        self.tables.iter().map(|t| t.entries.len()).sum()
    }

    /// Evaluate the kernel functionally on one input record.
    ///
    /// `irregular` resolves [`IrOp::IrregularLoad`] addresses (it receives
    /// the word address and returns the loaded value). Returns the output
    /// record. This reference evaluator is what the simulator's results are
    /// cross-checked against in tests.
    ///
    /// # Panics
    ///
    /// Panics if `record` is shorter than the declared input record — a
    /// driver bug, not a data condition.
    #[must_use]
    pub fn eval_record(&self, record: &[Value], irregular: &dyn Fn(u64) -> Value) -> Vec<Value> {
        assert!(
            record.len() >= self.record_in_words as usize,
            "record has {} words, kernel {} expects {}",
            record.len(),
            self.name,
            self.record_in_words
        );
        let mut vals: Vec<Value> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match node.op {
                IrOp::RecordIn(i) => record[i as usize],
                IrOp::Const(i) => self.constants[i as usize].1,
                IrOp::Imm(v) => v,
                IrOp::TableRead { table, index } => {
                    let t = &self.tables[table as usize];
                    let idx = vals[index.index()].as_u64() as usize;
                    t.entries.get(idx).copied().unwrap_or(Value::ZERO)
                }
                IrOp::IrregularLoad { addr } => irregular(vals[addr.index()].as_u64()),
                IrOp::Un { op, a } => trips_isa::exec::eval(op, vals[a.index()], Value::ZERO, Value::ZERO),
                IrOp::Bin { op, a, b } => {
                    trips_isa::exec::eval(op, vals[a.index()], vals[b.index()], Value::ZERO)
                }
                IrOp::Sel { p, a, b } => {
                    trips_isa::exec::eval(Opcode::Sel, vals[a.index()], vals[b.index()], vals[p.index()])
                }
            };
            vals.push(v);
        }
        let mut out = vec![Value::ZERO; self.record_out_words as usize];
        for &(i, r) in &self.outputs {
            out[i as usize] = vals[r.index()];
        }
        out
    }

    /// Structural validation (references in range and topologically
    /// ordered, outputs unique and in range, table/constant indices valid).
    ///
    /// # Errors
    ///
    /// Returns [`DlpError::MalformedProgram`] describing the first defect.
    pub fn validate(&self) -> Result<(), DlpError> {
        let bad = |detail: String| Err(DlpError::MalformedProgram { detail });
        for (i, node) in self.nodes.iter().enumerate() {
            let check = |r: IrRef| -> Result<(), DlpError> {
                if r.index() >= i {
                    return Err(DlpError::MalformedProgram {
                        detail: format!("kernel {}: node {i} references later node {}", self.name, r.index()),
                    });
                }
                Ok(())
            };
            match node.op {
                IrOp::RecordIn(w) => {
                    if w >= self.record_in_words {
                        return bad(format!("kernel {}: input word {w} out of record", self.name));
                    }
                }
                IrOp::Const(c) => {
                    if c as usize >= self.constants.len() {
                        return bad(format!("kernel {}: constant {c} undefined", self.name));
                    }
                }
                IrOp::Imm(_) => {}
                IrOp::TableRead { table, index } => {
                    if table as usize >= self.tables.len() {
                        return bad(format!("kernel {}: table {table} undefined", self.name));
                    }
                    check(index)?;
                }
                IrOp::IrregularLoad { addr } => check(addr)?,
                IrOp::Un { op, a } => {
                    let (_, r, _) = op.ports();
                    if r || op.is_mem() || matches!(op, Opcode::MovI | Opcode::Iter | Opcode::Nop) {
                        return bad(format!("kernel {}: {op} is not a unary ALU op", self.name));
                    }
                    check(a)?;
                }
                IrOp::Bin { op, a, b } => {
                    if op.is_mem() || matches!(op, Opcode::Sel | Opcode::MovI | Opcode::Iter | Opcode::Nop) {
                        return bad(format!("kernel {}: {op} is not a binary ALU op", self.name));
                    }
                    check(a)?;
                    check(b)?;
                }
                IrOp::Sel { p, a, b } => {
                    check(p)?;
                    check(a)?;
                    check(b)?;
                }
            }
        }
        let mut seen = vec![false; self.record_out_words as usize];
        for &(w, r) in &self.outputs {
            if w >= self.record_out_words {
                return bad(format!("kernel {}: output word {w} out of record", self.name));
            }
            if r.index() >= self.nodes.len() {
                return bad(format!("kernel {}: output references missing node", self.name));
            }
            if seen[w as usize] {
                return bad(format!("kernel {}: output word {w} written twice", self.name));
            }
            seen[w as usize] = true;
        }
        if let Some(w) = seen.iter().position(|s| !s) {
            return bad(format!("kernel {}: output word {w} never written", self.name));
        }
        Ok(())
    }
}
