//! Fluent construction of [`KernelIr`] DAGs.

use dlp_common::{DlpError, Value};
use trips_isa::{OpRole, Opcode};

use crate::{ControlClass, Domain, IrNode, IrOp, IrRef, KernelIr, TableSpec};

/// Builds a [`KernelIr`] node by node.
///
/// Nodes are appended in topological order (an operand must already exist
/// when it is referenced), which the type of [`IrRef`] enforces naturally:
/// the only way to get one is to have built the node.
///
/// All emitting methods default to [`OpRole::Useful`]; address arithmetic
/// and other plumbing should go through [`IrBuilder::bin_overhead`] /
/// [`IrBuilder::un_overhead`] so the ops/cycle metric matches the paper's
/// definition.
#[derive(Debug)]
pub struct IrBuilder {
    name: String,
    domain: Domain,
    nodes: Vec<IrNode>,
    outputs: Vec<(u16, IrRef)>,
    record_in_words: u16,
    record_out_words: u16,
    constants: Vec<(String, Value)>,
    tables: Vec<TableSpec>,
}

impl IrBuilder {
    /// Start a kernel with the given record shape (sizes in 64-bit words).
    #[must_use]
    pub fn new(name: impl Into<String>, domain: Domain, record_in: u16, record_out: u16) -> Self {
        IrBuilder {
            name: name.into(),
            domain,
            nodes: Vec::new(),
            outputs: Vec::new(),
            record_in_words: record_in,
            record_out_words: record_out,
            constants: Vec::new(),
            tables: Vec::new(),
        }
    }

    fn push(&mut self, op: IrOp, role: OpRole) -> IrRef {
        let r = IrRef(self.nodes.len() as u32);
        self.nodes.push(IrNode { op, role });
        r
    }

    /// Register a named scalar constant and return a node reading it.
    pub fn constant(&mut self, name: impl Into<String>, value: Value) -> IrRef {
        let idx = self.constants.len() as u16;
        self.constants.push((name.into(), value));
        self.push(IrOp::Const(idx), OpRole::Overhead)
    }

    /// A node reading an already registered constant (for re-reads that
    /// should not grow the constant pool).
    ///
    /// # Panics
    ///
    /// Panics if `idx` has not been registered.
    pub fn const_ref(&mut self, idx: u16) -> IrRef {
        assert!((idx as usize) < self.constants.len(), "constant {idx} not registered");
        self.push(IrOp::Const(idx), OpRole::Overhead)
    }

    /// Register a lookup table (indexed named constants); returns its id.
    pub fn table(&mut self, name: impl Into<String>, entries: Vec<Value>) -> u16 {
        let idx = self.tables.len() as u16;
        self.tables.push(TableSpec { name: name.into(), entries });
        idx
    }

    /// Word `i` of the input record.
    pub fn input(&mut self, i: u16) -> IrRef {
        self.push(IrOp::RecordIn(i), OpRole::Overhead)
    }

    /// An in-kernel literal.
    pub fn imm(&mut self, v: Value) -> IrRef {
        self.push(IrOp::Imm(v), OpRole::Overhead)
    }

    /// Read entry `index` of `table`.
    pub fn table_read(&mut self, table: u16, index: IrRef) -> IrRef {
        self.push(IrOp::TableRead { table, index }, OpRole::Useful)
    }

    /// An irregular load from a kernel-computed word address.
    pub fn irregular_load(&mut self, addr: IrRef) -> IrRef {
        self.push(IrOp::IrregularLoad { addr }, OpRole::Useful)
    }

    /// A unary ALU op.
    pub fn un(&mut self, op: Opcode, a: IrRef) -> IrRef {
        self.push(IrOp::Un { op, a }, OpRole::Useful)
    }

    /// A unary ALU op that is overhead (plumbing, address math).
    pub fn un_overhead(&mut self, op: Opcode, a: IrRef) -> IrRef {
        self.push(IrOp::Un { op, a }, OpRole::Overhead)
    }

    /// A binary ALU op.
    pub fn bin(&mut self, op: Opcode, a: IrRef, b: IrRef) -> IrRef {
        self.push(IrOp::Bin { op, a, b }, OpRole::Useful)
    }

    /// A binary ALU op that is overhead (address math, loop tests).
    pub fn bin_overhead(&mut self, op: Opcode, a: IrRef, b: IrRef) -> IrRef {
        self.push(IrOp::Bin { op, a, b }, OpRole::Overhead)
    }

    /// Select `p ? a : b` — the predication idiom (counted as overhead,
    /// since it exists only to emulate control flow on synchronized
    /// machines).
    pub fn sel(&mut self, p: IrRef, a: IrRef, b: IrRef) -> IrRef {
        self.push(IrOp::Sel { p, a, b }, OpRole::Overhead)
    }

    /// Write node `v` to word `i` of the output record.
    pub fn output(&mut self, i: u16, v: IrRef) {
        self.outputs.push((i, v));
    }

    /// Number of nodes so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finish and validate the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`DlpError::MalformedProgram`] if the DAG fails
    /// [`KernelIr::validate`].
    pub fn finish(self, control: ControlClass) -> Result<KernelIr, DlpError> {
        let ir = KernelIr {
            name: self.name,
            domain: self.domain,
            nodes: self.nodes,
            outputs: self.outputs,
            record_in_words: self.record_in_words,
            record_out_words: self.record_out_words,
            constants: self.constants,
            tables: self.tables,
            control,
        };
        ir.validate()?;
        Ok(ir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KernelIr {
        let mut b = IrBuilder::new("toy", Domain::Multimedia, 2, 1);
        let c = b.constant("c", Value::from_u64(10));
        let x = b.input(0);
        let y = b.input(1);
        let s = b.bin(Opcode::Add, x, c);
        let t = b.bin(Opcode::Mul, s, y);
        b.output(0, t);
        b.finish(ControlClass::Straight).unwrap()
    }

    #[test]
    fn builds_and_evaluates() {
        let k = toy();
        let out = k.eval_record(&[Value::from_u64(5), Value::from_u64(3)], &|_| Value::ZERO);
        assert_eq!(out[0].as_u64(), 45); // (5+10)*3
    }

    #[test]
    fn missing_output_rejected() {
        let mut b = IrBuilder::new("bad", Domain::Network, 1, 2);
        let x = b.input(0);
        b.output(0, x);
        // word 1 never written
        assert!(b.finish(ControlClass::Straight).is_err());
    }

    #[test]
    fn double_output_rejected() {
        let mut b = IrBuilder::new("bad", Domain::Network, 1, 1);
        let x = b.input(0);
        b.output(0, x);
        b.output(0, x);
        assert!(b.finish(ControlClass::Straight).is_err());
    }

    #[test]
    fn out_of_record_input_rejected() {
        let mut b = IrBuilder::new("bad", Domain::Network, 1, 1);
        let x = b.input(5);
        b.output(0, x);
        assert!(b.finish(ControlClass::Straight).is_err());
    }

    #[test]
    fn memory_opcode_in_bin_rejected() {
        let mut b = IrBuilder::new("bad", Domain::Network, 2, 1);
        let x = b.input(0);
        let y = b.input(1);
        let z = b.bin(Opcode::Lmw, x, y);
        b.output(0, z);
        assert!(b.finish(ControlClass::Straight).is_err());
    }

    #[test]
    fn table_read_resolves_entries() {
        let mut b = IrBuilder::new("lut", Domain::Network, 1, 1);
        let t = b.table("sq", (0..16).map(|i| Value::from_u64(i * i)).collect());
        let x = b.input(0);
        let v = b.table_read(t, x);
        b.output(0, v);
        let k = b.finish(ControlClass::Straight).unwrap();
        let out = k.eval_record(&[Value::from_u64(7)], &|_| Value::ZERO);
        assert_eq!(out[0].as_u64(), 49);
        assert_eq!(k.table_entries(), 16);
    }

    #[test]
    fn irregular_load_uses_callback() {
        let mut b = IrBuilder::new("tex", Domain::Graphics, 1, 1);
        let a = b.input(0);
        let v = b.irregular_load(a);
        b.output(0, v);
        let k = b.finish(ControlClass::Straight).unwrap();
        let out = k.eval_record(&[Value::from_u64(123)], &|addr| Value::from_u64(addr * 2));
        assert_eq!(out[0].as_u64(), 246);
    }

    #[test]
    fn sel_merges_paths() {
        let mut b = IrBuilder::new("cond", Domain::Graphics, 2, 1);
        let x = b.input(0);
        let y = b.input(1);
        let zero = b.imm(Value::ZERO);
        let p = b.bin(Opcode::Tgt, x, zero);
        let m = b.sel(p, x, y);
        b.output(0, m);
        let k = b.finish(ControlClass::Straight).unwrap();
        let pos = k.eval_record(&[Value::from_i64(5), Value::from_i64(9)], &|_| Value::ZERO);
        let neg = k.eval_record(&[Value::from_i64(-5), Value::from_i64(9)], &|_| Value::ZERO);
        assert_eq!(pos[0].as_i64(), 5);
        assert_eq!(neg[0].as_i64(), 9);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn const_ref_requires_registration() {
        let mut b = IrBuilder::new("bad", Domain::Network, 1, 1);
        b.const_ref(3);
    }
}
