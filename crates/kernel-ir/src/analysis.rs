//! Program-attribute analysis: regenerates a paper Table 2 row per kernel.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ControlClass, IrFacts, IrOp, KernelIr};

/// The attributes the paper characterizes kernels by (Table 2).
///
/// * `insts` — instructions in one kernel instance (internal loops
///   unrolled, as the paper does). Inputs, constants and immediates are
///   operand injections, not instructions; ALU ops, selects, table reads
///   and irregular loads count.
/// * `ilp` — inherent ILP: `insts ÷ dataflow-graph height` (paper §2.2).
/// * `record_read`/`record_write` — record sizes in 64-bit words.
/// * `irregular` — irregular memory accesses per kernel instance.
/// * `constants` — named scalar constants.
/// * `indexed_constants` — total lookup-table entries (0 when no table).
/// * `control` — the Figure 1 control class (Table 2's "Loop bounds").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelAttributes {
    /// Kernel name.
    pub name: String,
    /// Instruction count (unrolled).
    pub insts: usize,
    /// Inherent ILP.
    pub ilp: f64,
    /// Input record words.
    pub record_read: u16,
    /// Output record words.
    pub record_write: u16,
    /// Irregular accesses per instance.
    pub irregular: usize,
    /// Named scalar constants.
    pub constants: usize,
    /// Lookup-table entries.
    pub indexed_constants: usize,
    /// Control class.
    pub control: ControlClass,
}

impl KernelIr {
    /// Compute this kernel's Table 2 attributes.
    #[must_use]
    pub fn attributes(&self) -> KernelAttributes {
        let facts = IrFacts::compute(self);
        let ilp =
            if facts.height == 0 { 0.0 } else { facts.insts as f64 / f64::from(facts.height) };
        let irregular =
            self.nodes.iter().filter(|n| matches!(n.op, IrOp::IrregularLoad { .. })).count();
        KernelAttributes {
            name: self.name.clone(),
            insts: facts.insts,
            ilp,
            record_read: self.record_in_words,
            record_write: self.record_out_words,
            irregular,
            constants: self.constants.len(),
            indexed_constants: self.table_entries(),
            control: self.control,
        }
    }
}

impl fmt::Display for KernelAttributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dash = |n: usize| if n == 0 { "-".to_string() } else { n.to_string() };
        write!(
            f,
            "{:<22} {:>6} {:>6.1} {:>5}/{:<5} {:>9} {:>9} {:>9} {:>9}",
            self.name,
            self.insts,
            self.ilp,
            self.record_read,
            self.record_write,
            dash(self.irregular),
            dash(self.constants),
            dash(self.indexed_constants),
            self.control.loop_bounds_label(),
        )
    }
}

impl KernelAttributes {
    /// The header row matching [`KernelAttributes`]'s `Display` columns.
    #[must_use]
    pub fn header() -> String {
        format!(
            "{:<22} {:>6} {:>6} {:>11} {:>9} {:>9} {:>9} {:>9}",
            "Benchmark", "#Inst", "ILP", "Rec(r/w)", "#Irreg", "#Const", "#Indexed", "Loop"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, IrBuilder};
    use dlp_common::Value;
    use trips_isa::Opcode;

    #[test]
    fn chain_has_ilp_one() {
        // x -> +1 -> +1 -> +1: 3 insts, height 3, ILP 1.
        let mut b = IrBuilder::new("chain", Domain::Scientific, 1, 1);
        let one = b.imm(Value::from_u64(1));
        let mut x = b.input(0);
        for _ in 0..3 {
            x = b.bin(Opcode::Add, x, one);
        }
        b.output(0, x);
        let a = b.finish(ControlClass::Straight).unwrap().attributes();
        assert_eq!(a.insts, 3);
        assert!((a.ilp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_ops_raise_ilp() {
        // Four independent adds merged by a tree: 4 + 3 = 7 insts, height 3.
        let mut b = IrBuilder::new("wide", Domain::Scientific, 8, 1);
        let mut sums = Vec::new();
        for i in 0..4 {
            let x = b.input(2 * i);
            let y = b.input(2 * i + 1);
            sums.push(b.bin(Opcode::Add, x, y));
        }
        let s01 = b.bin(Opcode::Add, sums[0], sums[1]);
        let s23 = b.bin(Opcode::Add, sums[2], sums[3]);
        let total = b.bin(Opcode::Add, s01, s23);
        b.output(0, total);
        let a = b.finish(ControlClass::Straight).unwrap().attributes();
        assert_eq!(a.insts, 7);
        assert!((a.ilp - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn memory_and_table_attributes_counted() {
        let mut b = IrBuilder::new("mix", Domain::Graphics, 2, 1);
        let t = b.table("lut", vec![Value::ZERO; 128]);
        let c = b.constant("k", Value::from_u64(3));
        let x = b.input(0);
        let a = b.input(1);
        let tv = b.table_read(t, x);
        let ir = b.irregular_load(a);
        let s = b.bin(Opcode::Add, tv, ir);
        let s2 = b.bin(Opcode::Add, s, c);
        b.output(0, s2);
        let at = b.finish(ControlClass::VariableLoop { max_iters: 4 }).unwrap().attributes();
        assert_eq!(at.irregular, 1);
        assert_eq!(at.constants, 1);
        assert_eq!(at.indexed_constants, 128);
        assert_eq!(at.insts, 4); // table read + irregular load + 2 adds
        assert!(at.control.is_data_dependent());
        assert_eq!(at.control.loop_bounds_label(), "Variable");
    }

    #[test]
    fn display_produces_aligned_row() {
        let mut b = IrBuilder::new("disp", Domain::Multimedia, 3, 3);
        let x = b.input(0);
        let y = b.bin(Opcode::Add, x, x);
        b.output(0, y);
        b.output(1, x);
        b.output(2, x);
        let at = b.finish(ControlClass::FixedLoop { iters: 16 }).unwrap().attributes();
        let row = at.to_string();
        assert!(row.contains("disp"));
        assert!(row.contains("16"));
        assert!(!KernelAttributes::header().is_empty());
    }
}
