//! Shared dataflow facts over a kernel DAG.
//!
//! One source of truth for the dependence structure every analysis
//! consumes: which refs an operation reads, which nodes count as
//! instructions, per-node dataflow depth, and output liveness. The
//! Table 2 attribute generator ([`crate::KernelAttributes`]) and the
//! semantic analyzer in `dlp-verify` both build on these, so the two can
//! never disagree about what "height" or "dead" means.

use crate::{IrOp, IrRef, KernelIr};

impl IrOp {
    /// The operand references this operation reads, in port order.
    ///
    /// Leaves ([`IrOp::RecordIn`], [`IrOp::Const`], [`IrOp::Imm`]) read
    /// nothing.
    pub fn operands(&self) -> impl Iterator<Item = IrRef> {
        let refs: [Option<IrRef>; 3] = match *self {
            IrOp::RecordIn(_) | IrOp::Const(_) | IrOp::Imm(_) => [None, None, None],
            IrOp::TableRead { index, .. } => [Some(index), None, None],
            IrOp::IrregularLoad { addr } => [Some(addr), None, None],
            IrOp::Un { a, .. } => [Some(a), None, None],
            IrOp::Bin { a, b, .. } => [Some(a), Some(b), None],
            IrOp::Sel { p, a, b } => [Some(p), Some(a), Some(b)],
        };
        refs.into_iter().flatten()
    }

    /// Whether this operation is an *instruction* in the Table 2 sense:
    /// ALU ops, selects, table reads and irregular loads execute; inputs,
    /// constants and immediates are operand injections.
    #[must_use]
    pub fn is_instruction(&self) -> bool {
        matches!(
            self,
            IrOp::Un { .. }
                | IrOp::Bin { .. }
                | IrOp::Sel { .. }
                | IrOp::TableRead { .. }
                | IrOp::IrregularLoad { .. }
        )
    }
}

/// Dependence facts computed in one pass over a (topologically ordered)
/// kernel DAG.
#[derive(Clone, Debug)]
pub struct IrFacts {
    /// Per-node dataflow depth counted in *instructions*: leaves are
    /// depth 0, an instruction is one level above its deepest operand,
    /// and a non-instruction inherits its deepest operand's depth.
    pub depth: Vec<u32>,
    /// The DAG height: `max(depth)` — the length of the longest
    /// instruction chain.
    pub height: u32,
    /// Instruction count (nodes with [`IrOp::is_instruction`]).
    pub insts: usize,
    /// Per-node output liveness: `live[i]` iff node `i` transitively
    /// feeds some record output.
    pub live: Vec<bool>,
}

impl IrFacts {
    /// Compute the facts for `ir`.
    #[must_use]
    pub fn compute(ir: &KernelIr) -> Self {
        let nodes = ir.nodes();
        let mut depth = vec![0u32; nodes.len()];
        let mut height = 0u32;
        let mut insts = 0usize;
        for (i, node) in nodes.iter().enumerate() {
            let d = node.op.operands().map(|r| depth[r.index()]).max().unwrap_or(0);
            depth[i] = if node.op.is_instruction() {
                insts += 1;
                d + 1
            } else {
                d
            };
            height = height.max(depth[i]);
        }
        // Backward sweep: a node is live iff an output names it or a live
        // consumer reads it. Reverse topological order makes one pass
        // sufficient.
        let mut live = vec![false; nodes.len()];
        for &(_, r) in ir.outputs() {
            live[r.index()] = true;
        }
        for (i, node) in nodes.iter().enumerate().rev() {
            if live[i] {
                for r in node.op.operands() {
                    live[r.index()] = true;
                }
            }
        }
        IrFacts { depth, height, insts, live }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlClass, Domain, IrBuilder};
    use dlp_common::Value;
    use trips_isa::Opcode;

    #[test]
    fn operands_follow_port_order() {
        let mut b = IrBuilder::new("ops", Domain::Scientific, 2, 1);
        let x = b.input(0);
        let y = b.input(1);
        let p = b.bin(Opcode::Tltu, x, y);
        let s = b.sel(p, x, y);
        b.output(0, s);
        let ir = b.finish(ControlClass::Straight).unwrap();
        let sel = ir.nodes().last().unwrap();
        let got: Vec<usize> = sel.op.operands().map(IrRef::index).collect();
        assert_eq!(got, vec![p.index(), x.index(), y.index()]);
        assert!(sel.op.is_instruction());
        assert!(!ir.nodes()[x.index()].op.is_instruction());
    }

    #[test]
    fn facts_track_depth_and_liveness() {
        // x -> +1 -> +1 live chain, plus one dead add on the side.
        let mut b = IrBuilder::new("facts", Domain::Scientific, 1, 1);
        let one = b.imm(Value::from_u64(1));
        let x = b.input(0);
        let a1 = b.bin(Opcode::Add, x, one);
        let a2 = b.bin(Opcode::Add, a1, one);
        let dead = b.bin(Opcode::Add, x, x);
        b.output(0, a2);
        let ir = b.finish(ControlClass::Straight).unwrap();
        let f = IrFacts::compute(&ir);
        assert_eq!(f.insts, 3);
        assert_eq!(f.height, 2, "dead node does not extend the live chain's depth");
        assert_eq!(f.depth[a2.index()], 2);
        assert_eq!(f.depth[x.index()], 0, "leaves sit at depth 0");
        assert!(f.live[a2.index()] && f.live[a1.index()] && f.live[x.index()]);
        assert!(!f.live[dead.index()], "side computation is dead");
    }
}
