//! # dlp-kernel-ir
//!
//! The machine-independent representation of a data-parallel *kernel* — the
//! loop body that executes once per record of the input stream (§2.1).
//!
//! A [`KernelIr`] is a dataflow DAG over one record: stream inputs come in
//! through [`IrOp::RecordIn`], named scalar constants through
//! [`IrOp::Const`], indexed constants through [`IrOp::TableRead`], irregular
//! memory through [`IrOp::IrregularLoad`], and results leave through record
//! outputs. Kernels with internal loops are expressed **unrolled** (the form
//! vector/SIMD machines execute; the paper's Table 2 counts instructions the
//! same way — e.g. `dct` is 1728 instructions after unrolling its 16
//! iterations); data-dependent control is unrolled to its maximum trip count
//! with [`select`](IrBuilder::sel) merges, which is exactly the
//! masking/predication cost the paper ascribes to globally synchronized
//! machines. The rolled, branching form of a kernel lives separately as a
//! MIMD program (see `trips-isa`).
//!
//! [`KernelAttributes`] computes the paper's Table 2 row for a kernel
//! directly from its IR: instruction count, inherent ILP (instructions ÷
//! dataflow-graph height), record sizes, irregular-access count, constant
//! counts, and loop-bound class.
//!
//! # Example
//!
//! ```
//! use dlp_kernel_ir::{IrBuilder, ControlClass, Domain};
//! use trips_isa::Opcode;
//!
//! // A toy kernel: out[0] = in[0] * c0 + in[1]
//! let mut b = IrBuilder::new("toy", Domain::Multimedia, 2, 1);
//! let c0 = b.constant("gain", 3.0_f32.into());
//! let x = b.input(0);
//! let y = b.input(1);
//! let prod = b.bin(Opcode::FMul, x, c0);
//! let sum = b.bin(Opcode::FAdd, prod, y);
//! b.output(0, sum);
//! let ir = b.finish(ControlClass::Straight)?;
//!
//! let attrs = ir.attributes();
//! assert_eq!(attrs.insts, 2);
//! assert_eq!(attrs.constants, 1);
//! # Ok::<(), dlp_common::DlpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod builder;
mod facts;
mod ir;

pub use analysis::KernelAttributes;
pub use facts::IrFacts;
pub use builder::IrBuilder;
pub use ir::{ControlClass, Domain, IrNode, IrOp, IrRef, KernelIr, TableSpec};
