//! Software-managed cache (SMC) bank with its row streaming channel.

use std::ops::Range;

use dlp_common::{FaultInjector, MemParams, Tick};

use crate::Throttle;

/// One L2 bank reconfigured as a software-managed cache (§4.2).
///
/// Tag checks and hardware replacement are disabled; instead software (the
/// experiment driver, playing the role of the stream scheduler) declares
/// which word range is *resident* via [`SmcBank::set_resident`] — normally
/// after paying for a [`crate::DmaEngine`] transfer. Accesses inside the
/// window complete at SMC latency through the row's dedicated streaming
/// channel; accesses outside it fall through to main memory and pay the
/// DRAM penalty (this is how `lu`, whose dataset exceeds SMC capacity,
/// loses its advantage — exactly the paper's §5.1 caveat).
///
/// A wide load (`LMW`) is a single bank transaction that streams up to
/// [`MemParams::lmw_max_words`] contiguous words down the row channel,
/// amortizing per-access overhead — the mechanism that lets a load placed
/// next to the memory interface behave "like a vector fetch unit".
#[derive(Clone, Debug)]
pub struct SmcBank {
    capacity_words: u64,
    resident: Option<Range<u64>>,
    latency: Tick,
    dram_latency: Tick,
    channel_words_per_cycle: u32,
    lmw_max_words: u32,
    issue: Throttle,
    accesses: u64,
    dram_fallbacks: u64,
}

impl SmcBank {
    /// Build a bank from the memory parameters.
    #[must_use]
    pub fn new(params: &MemParams) -> Self {
        SmcBank {
            capacity_words: (params.smc_bank_bytes / 8) as u64,
            resident: None,
            latency: params.smc_latency,
            dram_latency: params.dram_latency,
            channel_words_per_cycle: params.smc_channel_words_per_cycle.max(1),
            lmw_max_words: params.lmw_max_words.max(1),
            issue: Throttle::new(1),
            accesses: 0,
            dram_fallbacks: 0,
        }
    }

    /// Bank capacity in 64-bit words.
    #[must_use]
    pub fn capacity_words(&self) -> u64 {
        self.capacity_words
    }

    /// Maximum words one LMW transaction may fetch.
    #[must_use]
    pub fn lmw_max_words(&self) -> u32 {
        self.lmw_max_words
    }

    /// Declare the resident word range (what software DMA'd in).
    ///
    /// The range is clamped to bank capacity: if software asks for more than
    /// fits, only the prefix is resident — the remainder of the dataset will
    /// fall back to DRAM on access.
    pub fn set_resident(&mut self, range: Range<u64>) -> Range<u64> {
        let len = (range.end - range.start).min(self.capacity_words);
        let clamped = range.start..range.start + len;
        self.resident = Some(clamped.clone());
        clamped
    }

    /// Declare the resident range without clamping to this bank's capacity.
    ///
    /// Used when software interleaves a stream across several banks: each
    /// bank answers for the whole aggregate window while holding only its
    /// share, so the *caller* is responsible for clamping to the aggregate
    /// capacity.
    pub fn set_resident_raw(&mut self, range: Range<u64>) {
        self.resident = Some(range);
    }

    /// The currently resident range, if any.
    #[must_use]
    pub fn resident(&self) -> Option<Range<u64>> {
        self.resident.clone()
    }

    fn covered(&self, addr: u64) -> bool {
        self.resident.as_ref().is_some_and(|r| r.contains(&addr))
    }

    /// A single-word access at `addr`; returns the completion tick.
    pub fn access(&mut self, addr: u64, now: Tick) -> Tick {
        self.accesses += 1;
        let start = self.issue_cycle(now);
        let lat = if self.covered(addr) {
            self.latency
        } else {
            self.dram_fallbacks += 1;
            self.latency + self.dram_latency
        };
        start + lat
    }

    /// A wide LMW transaction fetching `n` contiguous words at `addr`;
    /// returns the tick the **last** word reaches the row channel's end.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`SmcBank::lmw_max_words`].
    pub fn access_wide(&mut self, addr: u64, n: u32, now: Tick) -> Tick {
        assert!(n > 0 && n <= self.lmw_max_words, "lmw width {n} out of range");
        self.accesses += 1;
        let start = self.issue_cycle(now);
        let all_resident = (addr..addr + u64::from(n)).all(|a| self.covered(a));
        let base = if all_resident {
            self.latency
        } else {
            self.dram_fallbacks += 1;
            self.latency + self.dram_latency
        };
        // The channel streams `channel_words_per_cycle` words per cycle
        // (2 ticks); the first batch rides the base latency.
        let extra_batches = (n.saturating_sub(1)) / self.channel_words_per_cycle;
        start + base + Tick::from(extra_batches) * 2
    }

    /// Accept a store into the bank (issue slot + latency).
    pub fn store(&mut self, _addr: u64, now: Tick) -> Tick {
        self.accesses += 1;
        let start = self.issue_cycle(now);
        start + self.latency
    }

    /// [`SmcBank::access`] with fault injection: the bank may go busy for a
    /// stall window before the transaction starts (recovered by waiting —
    /// no replay, no data loss). Disabled injector ⇒ exactly `access`.
    pub fn access_faulty(&mut self, addr: u64, now: Tick, inj: &mut FaultInjector) -> Tick {
        self.access(addr, self.faulty_start(now, inj))
    }

    /// [`SmcBank::access_wide`] with fault injection (see
    /// [`SmcBank::access_faulty`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`SmcBank::lmw_max_words`].
    pub fn access_wide_faulty(
        &mut self,
        addr: u64,
        n: u32,
        now: Tick,
        inj: &mut FaultInjector,
    ) -> Tick {
        self.access_wide(addr, n, self.faulty_start(now, inj))
    }

    /// [`SmcBank::store`] with fault injection (see
    /// [`SmcBank::access_faulty`]).
    pub fn store_faulty(&mut self, addr: u64, now: Tick, inj: &mut FaultInjector) -> Tick {
        self.store(addr, self.faulty_start(now, inj))
    }

    /// Roll the bank-stall hazard: a struck transaction waits out a stall
    /// window before it can issue.
    fn faulty_start(&self, now: Tick, inj: &mut FaultInjector) -> Tick {
        if !inj.enabled() {
            return now;
        }
        let plan = inj.plan();
        if inj.roll(plan.smc_stall) {
            inj.stalled(plan.stall_ticks);
            now + plan.stall_ticks
        } else {
            now
        }
    }

    /// Total transactions issued.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that fell outside the resident window.
    #[must_use]
    pub fn dram_fallbacks(&self) -> u64 {
        self.dram_fallbacks
    }

    /// Clear throughput state and counters (between kernels); residency is
    /// kept, since it is software state.
    pub fn reset_timing(&mut self) {
        self.issue.reset();
        self.accesses = 0;
        self.dram_fallbacks = 0;
    }

    /// One new transaction per cycle.
    fn issue_cycle(&mut self, now: Tick) -> Tick {
        let got = self.issue.reserve(now / 2);
        (got * 2).max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> SmcBank {
        let mut b = SmcBank::new(&MemParams::default());
        b.set_resident(0..4096);
        b
    }

    #[test]
    fn resident_access_is_fast() {
        let mut b = bank();
        let t = b.access(100, 0);
        assert_eq!(t, MemParams::default().smc_latency);
        assert_eq!(b.dram_fallbacks(), 0);
    }

    #[test]
    fn non_resident_access_pays_dram() {
        let mut b = bank();
        let p = MemParams::default();
        let t = b.access(100_000, 0);
        assert_eq!(t, p.smc_latency + p.dram_latency);
        assert_eq!(b.dram_fallbacks(), 1);
    }

    #[test]
    fn resident_window_clamped_to_capacity() {
        let mut b = SmcBank::new(&MemParams::default());
        // 64 KB bank = 8192 words; ask for 100k words.
        let got = b.set_resident(0..100_000);
        assert_eq!(got, 0..8192);
        let t_in = b.access(8000, 0);
        b.reset_timing();
        let t_out = b.access(9000, 0);
        assert!(t_out > t_in);
    }

    #[test]
    fn wide_access_streams_batches() {
        let mut b = bank();
        let p = MemParams::default();
        // 8 words at 8 words/cycle: single batch.
        assert_eq!(b.access_wide(0, 8, 0), p.smc_latency);
        b.reset_timing();
        // Narrower channel: 8 words at 2/cycle = 3 extra batches = +6 ticks.
        let mut q = p;
        q.smc_channel_words_per_cycle = 2;
        let mut b2 = SmcBank::new(&q);
        b2.set_resident(0..4096);
        assert_eq!(b2.access_wide(0, 8, 0), q.smc_latency + 6);
    }

    #[test]
    fn one_transaction_per_cycle() {
        let mut b = bank();
        let t1 = b.access(0, 0);
        let t2 = b.access(1, 0);
        let t3 = b.access(2, 0);
        assert_eq!(t2 - t1, 2);
        assert_eq!(t3 - t2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_lmw_panics() {
        bank().access_wide(0, 64, 0);
    }

    #[test]
    fn faulty_access_with_zero_plan_is_identical() {
        use dlp_common::FaultPlan;
        let mut clean = bank();
        let mut faulty = bank();
        let mut inj = FaultPlan::none().injector(9);
        for i in 0..20 {
            assert_eq!(clean.access(i, i), faulty.access_faulty(i, i, &mut inj));
        }
        assert_eq!(clean.accesses(), faulty.accesses());
        assert_eq!(inj.stats().injected, 0);
    }

    #[test]
    fn bank_stall_delays_the_struck_transaction() {
        use dlp_common::{FaultPlan, FaultRate};
        let mut plan = FaultPlan::none();
        plan.smc_stall = FaultRate::per_million(1_000_000);
        let mut b = bank();
        let mut inj = plan.injector(9);
        let clean = bank().access(100, 0);
        let faulted = b.access_faulty(100, 0, &mut inj);
        assert_eq!(faulted, clean + plan.stall_ticks);
        assert_eq!(inj.stats().injected, 1);
        assert_eq!(inj.stats().stall_ticks, plan.stall_ticks);
        assert!(inj.fatal().is_none(), "stall windows are always recoverable");
    }

    #[test]
    fn stores_share_issue_bandwidth() {
        let mut b = bank();
        let t1 = b.store(0, 0);
        let t2 = b.access(1, 0);
        assert!(t2 > t1);
    }
}
