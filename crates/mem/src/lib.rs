//! # trips-mem
//!
//! The memory system of the simulated TRIPS-style processor, implementing
//! the paper's two §4.2 memory mechanisms plus the supporting machinery:
//!
//! * [`SmcBank`] — a secondary-level cache bank reconfigured as a fully
//!   **software-managed cache**: tag checks and hardware replacement are
//!   disabled, a [`DmaEngine`] stages data in and out under explicit program
//!   control, and a dedicated row **streaming channel** delivers operands to
//!   the row's ALUs (wide `LMW` transactions fetch several contiguous words
//!   at once).
//! * [`L1Cache`] — the **hardware-managed cached memory** path used by
//!   irregular accesses (set-associative with LRU replacement; tags only —
//!   data always lives in [`MainMemory`]).
//! * [`StoreBuffer`] — per-row coalescing of stores before they are written
//!   back, reducing write-port pressure (§4.2).
//! * [`MainMemory`] — the flat, word-addressed backing store. The machine is
//!   64-bit word oriented: the paper's Table 2 measures records in 64-bit
//!   words, and so do we. All addresses in this workspace are *word*
//!   addresses.
//!
//! Every component separates **function** (values) from **timing** (when a
//! transaction completes), and all timing is expressed in ticks
//! (half-cycles; see [`dlp_common::Tick`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panicking escape hatches are banned outside tests: a bad cell or an
// injected fault must surface as a structured `DlpError`, never tear
// down a whole sweep (CI promotes these to errors).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod dma;
mod l1;
mod main_memory;
mod smc;
mod store_buffer;
mod throttle;

pub use dma::DmaEngine;
pub use l1::L1Cache;
pub use main_memory::MainMemory;
pub use smc::SmcBank;
pub use store_buffer::StoreBuffer;
pub use throttle::Throttle;
