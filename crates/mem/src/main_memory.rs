//! The flat word-addressed backing store.

use dlp_common::Value;

/// Word-addressed main memory.
///
/// All data in the simulated machine lives here; the caches are pure timing
/// models (tags without data arrays), so there is never a coherence question
/// between model layers. The store grows on demand; reads of never-written
/// words return zero, like freshly mapped pages.
///
/// # Example
///
/// ```
/// use trips_mem::MainMemory;
/// use dlp_common::Value;
///
/// let mut mem = MainMemory::new();
/// mem.write(100, Value::from_u64(42));
/// assert_eq!(mem.read(100).as_u64(), 42);
/// assert_eq!(mem.read(7).as_u64(), 0); // untouched words read zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct MainMemory {
    words: Vec<Value>,
}

impl MainMemory {
    /// Create an empty memory.
    #[must_use]
    pub fn new() -> Self {
        MainMemory::default()
    }

    /// Read the word at `addr` (word address).
    #[must_use]
    pub fn read(&self, addr: u64) -> Value {
        self.words.get(addr as usize).copied().unwrap_or(Value::ZERO)
    }

    /// Write `value` at `addr` (word address), growing as needed.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds the 1 Gi-word safety limit — in practice
    /// that means a kernel computed a wild address, and failing fast beats
    /// silently allocating gigabytes.
    pub fn write(&mut self, addr: u64, value: Value) {
        const LIMIT: u64 = 1 << 30;
        assert!(addr < LIMIT, "address {addr:#x} exceeds simulated memory limit");
        let idx = addr as usize;
        if idx >= self.words.len() {
            self.words.resize(idx + 1, Value::ZERO);
        }
        self.words[idx] = value;
    }

    /// Write a slice of words starting at `base`.
    pub fn write_words(&mut self, base: u64, values: &[Value]) {
        for (i, v) in values.iter().enumerate() {
            self.write(base + i as u64, *v);
        }
    }

    /// Read `n` words starting at `base`.
    #[must_use]
    pub fn read_words(&self, base: u64, n: usize) -> Vec<Value> {
        (0..n).map(|i| self.read(base + i as u64)).collect()
    }

    /// Highest written word address plus one (the memory footprint).
    #[must_use]
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bulk_roundtrip() {
        let mut mem = MainMemory::new();
        let vals: Vec<Value> = (0..16).map(Value::from_u64).collect();
        mem.write_words(1000, &vals);
        assert_eq!(mem.read_words(1000, 16), vals);
        assert_eq!(mem.footprint_words(), 1016);
    }

    #[test]
    #[should_panic(expected = "memory limit")]
    fn wild_address_panics() {
        MainMemory::new().write(1 << 40, Value::ZERO);
    }

    proptest! {
        #[test]
        fn read_returns_last_write(addr in 0u64..10_000, a in any::<u64>(), b in any::<u64>()) {
            let mut mem = MainMemory::new();
            mem.write(addr, Value::from_u64(a));
            mem.write(addr, Value::from_u64(b));
            prop_assert_eq!(mem.read(addr).as_u64(), b);
        }

        #[test]
        fn disjoint_writes_do_not_alias(a in 0u64..5_000, b in 5_000u64..10_000) {
            let mut mem = MainMemory::new();
            mem.write(a, Value::from_u64(1));
            mem.write(b, Value::from_u64(2));
            prop_assert_eq!(mem.read(a).as_u64(), 1);
            prop_assert_eq!(mem.read(b).as_u64(), 2);
        }
    }
}
