//! The flat word-addressed backing store.

use dlp_common::Value;

/// Words per page. Kernels address a sparse space — inputs near zero,
/// outputs at [`BASE_OUT`-style megaword bases] — so the backing store is
/// paged: a write only materialises (and zeroes) the 16 Ki-word page it
/// lands on, never the gap below it. A dense `Vec` here cost milliseconds
/// per machine on the first high-address store (allocate + zero + realloc
/// copies of megabytes), which dominated the lane-batched engine's
/// dispatch time.
const PAGE_WORDS: usize = 1 << 14;

/// Word-addressed main memory.
///
/// All data in the simulated machine lives here; the caches are pure timing
/// models (tags without data arrays), so there is never a coherence question
/// between model layers. The store grows on demand page by page; reads of
/// never-written words return zero, like freshly mapped pages, and cloning
/// copies only the pages that have been touched.
///
/// # Example
///
/// ```
/// use trips_mem::MainMemory;
/// use dlp_common::Value;
///
/// let mut mem = MainMemory::new();
/// mem.write(100, Value::from_u64(42));
/// assert_eq!(mem.read(100).as_u64(), 42);
/// assert_eq!(mem.read(7).as_u64(), 0); // untouched words read zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct MainMemory {
    pages: Vec<Option<Box<[Value]>>>,
    /// Highest written word address plus one.
    footprint: usize,
}

impl MainMemory {
    /// Create an empty memory.
    #[must_use]
    pub fn new() -> Self {
        MainMemory::default()
    }

    /// Read the word at `addr` (word address).
    #[must_use]
    pub fn read(&self, addr: u64) -> Value {
        let idx = addr as usize;
        match self.pages.get(idx / PAGE_WORDS) {
            Some(Some(page)) => page[idx % PAGE_WORDS],
            _ => Value::ZERO,
        }
    }

    /// Write `value` at `addr` (word address), materialising the page on
    /// first touch.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds the 1 Gi-word safety limit — in practice
    /// that means a kernel computed a wild address, and failing fast beats
    /// silently allocating gigabytes.
    pub fn write(&mut self, addr: u64, value: Value) {
        const LIMIT: u64 = 1 << 30;
        assert!(addr < LIMIT, "address {addr:#x} exceeds simulated memory limit");
        let idx = addr as usize;
        let pi = idx / PAGE_WORDS;
        if pi >= self.pages.len() {
            self.pages.resize(pi + 1, None);
        }
        let page = self.pages[pi]
            .get_or_insert_with(|| vec![Value::ZERO; PAGE_WORDS].into_boxed_slice());
        page[idx % PAGE_WORDS] = value;
        self.footprint = self.footprint.max(idx + 1);
    }

    /// Write a slice of words starting at `base`.
    pub fn write_words(&mut self, base: u64, values: &[Value]) {
        for (i, v) in values.iter().enumerate() {
            self.write(base + i as u64, *v);
        }
    }

    /// Read `n` words starting at `base`.
    #[must_use]
    pub fn read_words(&self, base: u64, n: usize) -> Vec<Value> {
        (0..n).map(|i| self.read(base + i as u64)).collect()
    }

    /// Highest written word address plus one (the memory footprint).
    #[must_use]
    pub fn footprint_words(&self) -> usize {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bulk_roundtrip() {
        let mut mem = MainMemory::new();
        let vals: Vec<Value> = (0..16).map(Value::from_u64).collect();
        mem.write_words(1000, &vals);
        assert_eq!(mem.read_words(1000, 16), vals);
        assert_eq!(mem.footprint_words(), 1016);
    }

    #[test]
    #[should_panic(expected = "memory limit")]
    fn wild_address_panics() {
        MainMemory::new().write(1 << 40, Value::ZERO);
    }

    proptest! {
        #[test]
        fn read_returns_last_write(addr in 0u64..10_000, a in any::<u64>(), b in any::<u64>()) {
            let mut mem = MainMemory::new();
            mem.write(addr, Value::from_u64(a));
            mem.write(addr, Value::from_u64(b));
            prop_assert_eq!(mem.read(addr).as_u64(), b);
        }

        #[test]
        fn disjoint_writes_do_not_alias(a in 0u64..5_000, b in 5_000u64..10_000) {
            let mut mem = MainMemory::new();
            mem.write(a, Value::from_u64(1));
            mem.write(b, Value::from_u64(2));
            prop_assert_eq!(mem.read(a).as_u64(), 1);
            prop_assert_eq!(mem.read(b).as_u64(), 2);
        }
    }
}
