//! Hardware-managed L1 cache bank (timing model).

use dlp_common::{FaultInjector, MemParams, Tick};

use crate::Throttle;

/// One set-associative L1 cache bank with LRU replacement.
///
/// This is the paper's *cached memory subsystem* mechanism: irregular
/// accesses (texture fetches, indexed constants when no L0 store is
/// configured) go through here. The model tracks tags only; data always
/// lives in [`crate::MainMemory`].
///
/// The bank accepts a bounded number of new accesses per cycle, so kernels
/// that hammer lookup tables through the L1 pay in *bandwidth*, not just
/// latency — the effect the paper's §2.1.1 calls out ("consumes little
/// storage space, but tremendous cache bandwidth").
#[derive(Clone, Debug)]
pub struct L1Cache {
    line_words: u64,
    sets: usize,
    ways: usize,
    /// `tags[set]` holds up to `ways` line tags, most recently used last.
    tags: Vec<Vec<u64>>,
    throttle: Throttle,
    hit_latency: Tick,
    miss_penalty: Tick,
    accesses: u64,
    misses: u64,
}

impl L1Cache {
    /// Standard associativity for the model.
    const WAYS: usize = 2;

    /// Build a bank of `capacity_bytes` with the line size and latencies
    /// from `params`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one line.
    #[must_use]
    pub fn new(capacity_bytes: usize, params: &MemParams) -> Self {
        let line_bytes = params.l1_line_bytes.max(8);
        assert!(capacity_bytes >= line_bytes, "cache smaller than one line");
        let lines = capacity_bytes / line_bytes;
        let sets = (lines / Self::WAYS).max(1);
        L1Cache {
            line_words: (line_bytes / 8) as u64,
            sets,
            ways: Self::WAYS,
            tags: vec![Vec::new(); sets],
            throttle: Throttle::new(params.l1_accesses_per_cycle.max(1)),
            hit_latency: params.l1_hit_latency,
            miss_penalty: params.l1_miss_penalty,
            accesses: 0,
            misses: 0,
        }
    }

    /// Access the word at `addr`, returning `(completion_tick, hit)`.
    ///
    /// Note the throttle grants one slot per **tick** (half-cycle); the
    /// configured accesses-per-cycle is halved into the throttle rate by
    /// construction in [`L1Cache::new`] using a per-tick budget, so a
    /// 1-access/cycle bank still accepts at most one access per tick pair.
    pub fn access(&mut self, addr: u64, now: Tick) -> (Tick, bool) {
        self.accesses += 1;
        let start = self.throttle_cycle(now);
        let line = addr / self.line_words;
        let set = (line % self.sets as u64) as usize;
        let ways = &mut self.tags[set];
        let hit = if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.push(tag); // move to MRU position
            true
        } else {
            self.misses += 1;
            if ways.len() == self.ways {
                ways.remove(0); // evict LRU
            }
            ways.push(line);
            false
        };
        let lat = if hit { self.hit_latency } else { self.hit_latency + self.miss_penalty };
        (start + lat, hit)
    }

    /// [`L1Cache::access`] with fault injection: a miss fill may be struck
    /// and retried from DRAM, delaying completion by the plan's fill-delay
    /// window (hits are unaffected — the data is already in the bank).
    /// Disabled injector ⇒ exactly `access`.
    pub fn access_faulty(
        &mut self,
        addr: u64,
        now: Tick,
        inj: &mut FaultInjector,
    ) -> (Tick, bool) {
        let (mut done, hit) = self.access(addr, now);
        if !hit && inj.enabled() {
            let plan = inj.plan();
            if inj.roll(plan.l1_fill_delay) {
                inj.stalled(plan.fill_delay_ticks);
                done += plan.fill_delay_ticks;
            }
        }
        (done, hit)
    }

    /// Reserve an issue slot, granting at most the configured accesses per
    /// *cycle* (two ticks).
    fn throttle_cycle(&mut self, now: Tick) -> Tick {
        // Align reservations to cycle boundaries so "N per cycle" means what
        // it says even at tick granularity.
        let cycle_start = now & !1;
        let got = self.throttle.reserve(cycle_start / 2);
        (got * 2).max(now)
    }

    /// Number of accesses so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all cached lines and reservations (between kernels).
    pub fn reset(&mut self) {
        for set in &mut self.tags {
            set.clear();
        }
        self.throttle.reset();
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> L1Cache {
        L1Cache::new(8 * 1024, &MemParams::default())
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = cache();
        let (_, hit0) = c.access(100, 0);
        let (_, hit1) = c.access(100, 100);
        assert!(!hit0);
        assert!(hit1);
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_hits() {
        let mut c = cache();
        c.access(0, 0);
        // Default 64-byte line = 8 words: word 7 shares the line, word 8 not.
        let (_, hit) = c.access(7, 100);
        assert!(hit);
        let (_, hit) = c.access(8, 200);
        assert!(!hit);
    }

    #[test]
    fn lru_eviction_within_set() {
        let params = MemParams::default();
        let mut c = L1Cache::new(8 * 1024, &params);
        // 8 KB / 64 B = 128 lines, 64 sets × 2 ways. Lines mapping to set 0:
        // line numbers ≡ 0 (mod 64), i.e. word addresses 0, 512*8=4096...
        let line_words = 8;
        let set_stride = 64 * line_words; // words between same-set lines
        let a = 0;
        let b = set_stride;
        let c3 = 2 * set_stride;
        c.access(a, 0); // miss, set0 = [a]
        c.access(b, 10); // miss, set0 = [a, b]
        c.access(a, 20); // hit, set0 = [b, a]
        let (_, hit) = c.access(c3, 30); // miss, evicts b
        assert!(!hit);
        let (_, hit) = c.access(a, 40); // a survived (was MRU)
        assert!(hit);
        let (_, hit) = c.access(b, 50); // b was evicted
        assert!(!hit);
    }

    #[test]
    fn miss_costs_more_than_hit() {
        let mut c = cache();
        let (t_miss, _) = c.access(0, 0);
        let (t_hit, _) = c.access(0, 1000);
        assert!(t_miss > t_hit - 1000);
    }

    #[test]
    fn bandwidth_throttles_same_cycle_accesses() {
        let params = MemParams { l1_accesses_per_cycle: 1, ..MemParams::default() };
        let mut c = L1Cache::new(8 * 1024, &params);
        c.access(0, 0); // warm the line
        let (t1, _) = c.access(0, 100);
        let (t2, _) = c.access(0, 100);
        let (t3, _) = c.access(0, 100);
        assert!(t2 > t1);
        assert!(t3 > t2);
        // Consecutive same-cycle accesses are spaced by full cycles.
        assert_eq!(t2 - t1, 2);
    }

    #[test]
    fn dual_ported_bank_admits_two_per_cycle() {
        let mut c = cache(); // default: 2 accesses/cycle
        c.access(0, 0); // warm the line
        let (t1, _) = c.access(0, 100);
        let (t2, _) = c.access(0, 100);
        let (t3, _) = c.access(0, 100);
        assert_eq!(t1, t2, "two ports serve the same cycle");
        assert!(t3 > t2, "the third access spills to the next cycle");
    }

    #[test]
    fn fill_delay_hits_misses_only() {
        use dlp_common::{FaultPlan, FaultRate};
        let mut plan = FaultPlan::none();
        plan.l1_fill_delay = FaultRate::per_million(1_000_000);
        let mut c = cache();
        let mut inj = plan.injector(4);
        let (t_miss, hit) = c.access_faulty(0, 0, &mut inj);
        assert!(!hit);
        let mut clean = cache();
        let (t_clean, _) = clean.access(0, 0);
        assert_eq!(t_miss, t_clean + plan.fill_delay_ticks);
        // The refill installed the line; the hit path never rolls.
        let before = inj.stats();
        let (_, hit) = c.access_faulty(0, 1000, &mut inj);
        assert!(hit);
        assert_eq!(inj.stats(), before);
    }

    #[test]
    fn reset_clears_tags_and_counts() {
        let mut c = cache();
        c.access(0, 0);
        c.reset();
        let (_, hit) = c.access(0, 0);
        assert!(!hit);
        assert_eq!(c.accesses(), 1);
    }
}
