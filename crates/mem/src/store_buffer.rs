//! Per-row coalescing store buffer.

use dlp_common::{FaultInjector, MemParams, Tick};

/// A coalescing store buffer (§4.2): stores from different nodes in a row
/// merge into line-sized write-backs before reaching the SMC bank, reducing
/// write-port pressure.
///
/// The model coalesces stores that land in the same line *and* the same
/// drain window; each distinct line costs one drain slot at the configured
/// drain bandwidth. Functional data goes straight to main memory (the
/// simulator writes through); this component answers only "when has the
/// store left the buffer?" — the part of block completion the paper's store
/// counting depends on.
#[derive(Clone, Debug)]
pub struct StoreBuffer {
    line_words: u64,
    entries: usize,
    drains_per_cycle: u32,
    /// Open coalescing windows: (line, drain_tick).
    open: Vec<(u64, Tick)>,
    next_drain: Tick,
    stores: u64,
    drains: u64,
}

impl StoreBuffer {
    /// Build a store buffer from the memory parameters.
    #[must_use]
    pub fn new(params: &MemParams) -> Self {
        StoreBuffer {
            line_words: (params.l1_line_bytes.max(8) / 8) as u64,
            entries: params.store_buffer_entries.max(1),
            drains_per_cycle: params.store_drains_per_cycle.max(1),
            open: Vec::new(),
            next_drain: 0,
            stores: 0,
            drains: 0,
        }
    }

    /// Accept a store to word `addr` at `now`; returns the tick the store
    /// is considered globally performed (drained).
    pub fn push(&mut self, addr: u64, now: Tick) -> Tick {
        self.stores += 1;
        let line = addr / self.line_words;
        // Coalesce with an open window for the same line that has not
        // drained yet.
        if let Some(&(_, t)) = self.open.iter().find(|&&(l, t)| l == line && t > now) {
            return t;
        }
        // Need a new drain slot.
        let interval = 2 / Tick::from(self.drains_per_cycle.min(2)); // ticks between drains
        let drain = now.max(self.next_drain) + interval.max(1);
        self.next_drain = drain;
        self.drains += 1;
        if self.open.len() == self.entries {
            self.open.remove(0);
        }
        self.open.push((line, drain));
        drain
    }

    /// [`StoreBuffer::push`] with fault injection: the buffered entry is an
    /// operand store, so it is parity-protected like any other — a flipped
    /// entry is re-latched from the node's write port (bounded retries via
    /// [`FaultInjector::operand_write`]). Disabled injector ⇒ exactly
    /// `push`.
    pub fn push_faulty(&mut self, addr: u64, now: Tick, inj: &mut FaultInjector) -> Tick {
        let drained = self.push(addr, now);
        inj.operand_write(drained)
    }

    /// Stores accepted.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Line write-backs issued (after coalescing).
    #[must_use]
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Forget buffered state (between kernels).
    pub fn reset(&mut self) {
        self.open.clear();
        self.next_drain = 0;
        self.stores = 0;
        self.drains = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer() -> StoreBuffer {
        StoreBuffer::new(&MemParams::default())
    }

    #[test]
    fn same_line_coalesces() {
        let mut sb = buffer();
        let t1 = sb.push(0, 0);
        let t2 = sb.push(1, 0); // same 8-word line
        assert_eq!(t1, t2);
        assert_eq!(sb.stores(), 2);
        assert_eq!(sb.drains(), 1);
    }

    #[test]
    fn different_lines_take_separate_drains() {
        let mut sb = buffer();
        let t1 = sb.push(0, 0);
        let t2 = sb.push(64, 0); // different line
        assert!(t2 > t1);
        assert_eq!(sb.drains(), 2);
    }

    #[test]
    fn drain_bandwidth_spaces_writebacks() {
        let mut sb = buffer();
        let t1 = sb.push(0, 0);
        let t2 = sb.push(100, 0);
        let t3 = sb.push(200, 0);
        assert!(t2 > t1);
        assert!(t3 > t2);
    }

    #[test]
    fn late_store_to_drained_line_starts_new_window() {
        let mut sb = buffer();
        let t1 = sb.push(0, 0);
        let t2 = sb.push(0, t1 + 10); // after the window drained
        assert!(t2 > t1);
        assert_eq!(sb.drains(), 2);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut sb = buffer();
        sb.push(0, 0);
        sb.reset();
        assert_eq!(sb.stores(), 0);
        assert_eq!(sb.drains(), 0);
    }
}
