//! The per-bank DMA engine that stages data between DRAM and an SMC bank.

use dlp_common::{FaultInjector, MemParams, Tick};

/// The explicitly programmed DMA engine attached to each SMC bank (§4.2).
///
/// Software (compiler/programmer — here, the experiment driver) issues bulk
/// transfers to stage kernel inputs into the software-managed cache before
/// launching a kernel, and to write results back afterwards. The engine is
/// a pure cost model: one DRAM round-trip of startup latency plus the
/// streaming time of the payload at channel bandwidth.
///
/// # Example
///
/// ```
/// use trips_mem::DmaEngine;
/// use dlp_common::MemParams;
///
/// let params = MemParams::default();
/// let dma = DmaEngine::new(&params);
/// let t = dma.transfer_done(1024, 0); // stage 1024 words at tick 0
/// assert!(t > params.dram_latency);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DmaEngine {
    dram_latency: Tick,
    words_per_cycle: u32,
}

impl DmaEngine {
    /// Build the engine from the memory parameters.
    #[must_use]
    pub fn new(params: &MemParams) -> Self {
        DmaEngine {
            dram_latency: params.dram_latency,
            words_per_cycle: params.smc_channel_words_per_cycle.max(1),
        }
    }

    /// Completion tick of a `words`-long transfer started at `now`.
    #[must_use]
    pub fn transfer_done(&self, words: u64, now: Tick) -> Tick {
        if words == 0 {
            return now;
        }
        let stream_cycles = words.div_ceil(u64::from(self.words_per_cycle));
        now + self.dram_latency + stream_cycles * 2
    }

    /// [`DmaEngine::transfer_done`] with fault injection: the engine may
    /// stall mid-transfer for the plan's stall window, absorbed into the
    /// staging time (the launch throttle simply starts the kernel later).
    /// Disabled injector ⇒ exactly `transfer_done`.
    pub fn transfer_done_faulty(&self, words: u64, now: Tick, inj: &mut FaultInjector) -> Tick {
        let done = self.transfer_done(words, now);
        if words == 0 || !inj.enabled() {
            return done;
        }
        let plan = inj.plan();
        if inj.roll(plan.dma_stall) {
            inj.stalled(plan.stall_ticks);
            done + plan.stall_ticks
        } else {
            done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_transfer_is_free() {
        let dma = DmaEngine::new(&MemParams::default());
        assert_eq!(dma.transfer_done(0, 42), 42);
    }

    #[test]
    fn cost_scales_with_size() {
        let dma = DmaEngine::new(&MemParams::default());
        let small = dma.transfer_done(64, 0);
        let large = dma.transfer_done(64 * 1024, 0);
        assert!(large > small);
        // Streaming dominated: doubling size roughly doubles stream time.
        let t1 = dma.transfer_done(100_000, 0);
        let t2 = dma.transfer_done(200_000, 0);
        let stream1 = t1 - MemParams::default().dram_latency;
        let stream2 = t2 - MemParams::default().dram_latency;
        assert!((stream2 as f64 / stream1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn stalled_transfer_is_absorbed_not_fatal() {
        use dlp_common::{FaultPlan, FaultRate};
        let mut plan = FaultPlan::none();
        plan.dma_stall = FaultRate::per_million(1_000_000);
        let dma = DmaEngine::new(&MemParams::default());
        let mut inj = plan.injector(11);
        let clean = dma.transfer_done(1024, 0);
        let faulted = dma.transfer_done_faulty(1024, 0, &mut inj);
        assert_eq!(faulted, clean + plan.stall_ticks);
        assert!(inj.fatal().is_none());
        // Zero-word transfers never roll.
        let before = inj.stats();
        assert_eq!(dma.transfer_done_faulty(0, 7, &mut inj), 7);
        assert_eq!(inj.stats(), before);
    }

    #[test]
    fn startup_latency_is_paid_once() {
        let p = MemParams::default();
        let dma = DmaEngine::new(&p);
        assert_eq!(dma.transfer_done(p.smc_channel_words_per_cycle as u64, 0), p.dram_latency + 2);
    }
}
