//! Bandwidth throttling shared by the memory components.

use dlp_common::Tick;

/// A departure-slot reservation queue: at most `per_tick` transactions may
/// start on any one tick; excess transactions are pushed to later ticks.
///
/// This is the single primitive behind every bandwidth limit in the memory
/// system (L1 bank ports, SMC transaction issue, store-buffer drains).
///
/// # Example
///
/// ```
/// use trips_mem::Throttle;
///
/// let mut t = Throttle::new(1);
/// assert_eq!(t.reserve(10), 10);
/// assert_eq!(t.reserve(10), 11); // second request on the same tick waits
/// assert_eq!(t.reserve(10), 12);
/// ```
#[derive(Clone, Debug)]
pub struct Throttle {
    per_tick: u32,
    tick: Tick,
    used: u32,
}

impl Throttle {
    /// Create a throttle admitting `per_tick` transactions per tick.
    ///
    /// # Panics
    ///
    /// Panics if `per_tick` is zero.
    #[must_use]
    pub fn new(per_tick: u32) -> Self {
        assert!(per_tick > 0, "throttle bandwidth must be nonzero");
        Throttle { per_tick, tick: 0, used: 0 }
    }

    /// Reserve the earliest available slot at or after `ready`; returns the
    /// tick the transaction actually starts.
    pub fn reserve(&mut self, ready: Tick) -> Tick {
        let start = if ready > self.tick {
            ready
        } else if self.used < self.per_tick {
            self.tick
        } else {
            self.tick + 1
        };
        if start == self.tick {
            self.used += 1;
        } else {
            self.tick = start;
            self.used = 1;
        }
        start
    }

    /// Clear all reservations.
    pub fn reset(&mut self) {
        self.tick = 0;
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_per_tick_capacity() {
        let mut t = Throttle::new(2);
        assert_eq!(t.reserve(5), 5);
        assert_eq!(t.reserve(5), 5);
        assert_eq!(t.reserve(5), 6);
        assert_eq!(t.reserve(5), 6);
        assert_eq!(t.reserve(5), 7);
    }

    #[test]
    fn later_ready_times_skip_ahead() {
        let mut t = Throttle::new(1);
        assert_eq!(t.reserve(0), 0);
        assert_eq!(t.reserve(100), 100);
        assert_eq!(t.reserve(100), 101);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut t = Throttle::new(1);
        t.reserve(0);
        t.reserve(0);
        t.reset();
        assert_eq!(t.reserve(0), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bandwidth_panics() {
        let _ = Throttle::new(0);
    }
}
