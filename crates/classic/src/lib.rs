//! # dlp-classic
//!
//! First-order timing models of the three classic data-parallel
//! architecture families the paper's Section 3 surveys (Figure 2):
//!
//! * [`VectorMachine`] — global control, a vector register file staging
//!   values between memory and the ALUs (Cray-1 / VectorIRAM / Tarantula
//!   style). Efficient on regular streams; *gathers* for irregular or
//!   indexed accesses are slow, and data-dependent control executes under
//!   masks (all iterations pay the maximum trip count).
//! * [`SimdArray`] — global control over per-PE private memories (CM-2 /
//!   MasPar style). Point-to-point neighbor communication exists, but
//!   irregular global accesses serialize through a shared port, and
//!   conditionals execute under masks.
//! * [`CoarseMimd`] — independently controlled coarse cores (SPMD), cheap
//!   data-dependent control, but per-element synchronization and
//!   fine-grain communication are expensive.
//!
//! The models consume a kernel's measured [`KernelAttributes`] (Table 2)
//! and produce estimated cycles per record. They are deliberately
//! first-order — the paper gives no quantitative data for these machines —
//! and exist so the workspace can *demonstrate* Section 3's qualitative
//! claims: which kernel class each architecture likes, and why a single
//! fixed model leaves performance behind (motivating the universal
//! mechanisms). See the `classic_architectures` example.
//!
//! # Example
//!
//! ```
//! use dlp_classic::{VectorMachine, CoarseMimd, ClassicModel};
//! use dlp_kernel_ir::{IrBuilder, ControlClass, Domain};
//! use trips_isa::Opcode;
//!
//! // A tiny regular streaming kernel: out = in0 + in1.
//! let mut b = IrBuilder::new("t", Domain::Scientific, 2, 1);
//! let x = b.input(0);
//! let y = b.input(1);
//! let s = b.bin(Opcode::FAdd, x, y);
//! b.output(0, s);
//! let attrs = b.finish(ControlClass::Straight)?.attributes();
//!
//! let vector = VectorMachine::default().cycles_per_record(&attrs);
//! let mimd = CoarseMimd::default().cycles_per_record(&attrs);
//! // A regular streaming kernel is far better on the vector machine.
//! assert!(vector < mimd);
//! # Ok::<(), dlp_common::DlpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dlp_kernel_ir::{ControlClass, KernelAttributes};
use serde::{Deserialize, Serialize};

/// A first-order classic-architecture timing model.
pub trait ClassicModel {
    /// Estimated execution cycles per kernel record (amortized, steady
    /// state).
    fn cycles_per_record(&self, attrs: &KernelAttributes) -> f64;

    /// Model name for reports.
    fn name(&self) -> &'static str;
}

/// Instructions a kernel executes per record, accounting for masked
/// execution of data-dependent loops on globally synchronized machines:
/// every element pays the full unrolled maximum (§2.1.2).
fn masked_insts(attrs: &KernelAttributes) -> f64 {
    attrs.insts as f64
}

/// Average *useful* fraction under data-dependent control: a MIMD machine
/// only executes live iterations. We assume the live trip count averages
/// half the maximum, as in the paper's skinning/anisotropic discussion.
fn mimd_insts(attrs: &KernelAttributes) -> f64 {
    match attrs.control {
        ControlClass::VariableLoop { .. } => attrs.insts as f64 * 0.5,
        _ => attrs.insts as f64,
    }
}

/// A classic vector machine (Figure 2, left).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VectorMachine {
    /// Vector lanes (parallel pipelines).
    pub lanes: u32,
    /// Words per cycle the memory system streams into the VRF.
    pub stream_words_per_cycle: u32,
    /// Cycles per gathered element (irregular or indexed access).
    pub gather_cycles: f64,
    /// Fixed per-vector-instruction startup overhead, amortized over the
    /// (assumed) vector length.
    pub startup_per_inst: f64,
}

impl Default for VectorMachine {
    fn default() -> Self {
        VectorMachine {
            lanes: 16,
            stream_words_per_cycle: 16,
            gather_cycles: 4.0,
            startup_per_inst: 0.25,
        }
    }
}

impl ClassicModel for VectorMachine {
    fn cycles_per_record(&self, attrs: &KernelAttributes) -> f64 {
        let compute = masked_insts(attrs) / f64::from(self.lanes)
            + masked_insts(attrs) * self.startup_per_inst / 64.0;
        let stream = f64::from(attrs.record_read + attrs.record_write)
            / f64::from(self.stream_words_per_cycle);
        // Irregular + indexed-constant traffic gathers element by element.
        let lookups = attrs.irregular as f64
            + if attrs.indexed_constants > 0 { table_reads_estimate(attrs) } else { 0.0 };
        let gathers = lookups * self.gather_cycles;
        compute.max(stream) + gathers
    }

    fn name(&self) -> &'static str {
        "vector"
    }
}

/// A fine-grain SIMD array (Figure 2, middle).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimdArray {
    /// Processing elements.
    pub pes: u32,
    /// Cycles per element of irregular/global traffic (serialized through
    /// the global port).
    pub global_access_cycles: f64,
    /// Per-instruction broadcast overhead.
    pub broadcast_overhead: f64,
}

impl Default for SimdArray {
    fn default() -> Self {
        SimdArray { pes: 64, global_access_cycles: 8.0, broadcast_overhead: 0.1 }
    }
}

impl ClassicModel for SimdArray {
    fn cycles_per_record(&self, attrs: &KernelAttributes) -> f64 {
        // One record per PE: the array retires `pes` records every
        // `insts` instructions, but every instruction costs (1 + overhead)
        // cycles and lookups serialize.
        let per_element = masked_insts(attrs) * (1.0 + self.broadcast_overhead)
            / f64::from(self.pes);
        let lookups = attrs.irregular as f64
            + if attrs.indexed_constants > 0 { table_reads_estimate(attrs) } else { 0.0 };
        // Serialized through the global port: each element's lookups cost
        // full latency and contend across the array.
        per_element + lookups * self.global_access_cycles / f64::from(self.pes).sqrt()
    }

    fn name(&self) -> &'static str {
        "simd"
    }
}

/// A coarse-grain MIMD multiprocessor (Figure 2, right).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CoarseMimd {
    /// Cores.
    pub cores: u32,
    /// Sustained IPC per core on scalar kernel code.
    pub ipc: f64,
    /// Per-record scheduling/synchronization overhead in cycles
    /// (coarse-grain machines amortize poorly at record granularity).
    pub sync_cycles: f64,
}

impl Default for CoarseMimd {
    fn default() -> Self {
        CoarseMimd { cores: 8, ipc: 2.0, sync_cycles: 50.0 }
    }
}

impl ClassicModel for CoarseMimd {
    fn cycles_per_record(&self, attrs: &KernelAttributes) -> f64 {
        let per_core = mimd_insts(attrs) / self.ipc + self.sync_cycles;
        per_core / f64::from(self.cores)
    }

    fn name(&self) -> &'static str {
        "coarse-mimd"
    }
}

/// Rough table-read count per record: kernels touch their lookup tables a
/// handful of times per round; we scale with instruction count (every ~6th
/// instruction in the table-using kernels of Table 2 is a lookup).
fn table_reads_estimate(attrs: &KernelAttributes) -> f64 {
    (attrs.insts as f64 / 6.0).min(attrs.indexed_constants as f64)
}

/// Evaluate all three classic models on a kernel.
#[must_use]
pub fn survey(attrs: &KernelAttributes) -> Vec<(&'static str, f64)> {
    vec![
        ("vector", VectorMachine::default().cycles_per_record(attrs)),
        ("simd", SimdArray::default().cycles_per_record(attrs)),
        ("coarse-mimd", CoarseMimd::default().cycles_per_record(attrs)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_kernel_ir::{ControlClass, Domain, IrBuilder};
    use trips_isa::Opcode;

    fn attrs(
        insts: usize,
        irregular: usize,
        indexed: usize,
        control: ControlClass,
    ) -> KernelAttributes {
        KernelAttributes {
            name: "synthetic".into(),
            insts,
            ilp: 4.0,
            record_read: 4,
            record_write: 2,
            irregular,
            constants: 4,
            indexed_constants: indexed,
            control,
        }
    }

    #[test]
    fn vector_wins_regular_streams() {
        let a = attrs(16, 0, 0, ControlClass::Straight);
        let v = VectorMachine::default().cycles_per_record(&a);
        let m = CoarseMimd::default().cycles_per_record(&a);
        assert!(v < m, "vector {v} should beat coarse MIMD {m} on regular streams");
    }

    #[test]
    fn irregular_accesses_hurt_vector_machines() {
        let clean = attrs(64, 0, 0, ControlClass::Straight);
        let dirty = attrs(64, 8, 0, ControlClass::Straight);
        let vm = VectorMachine::default();
        assert!(
            vm.cycles_per_record(&dirty) > 2.0 * vm.cycles_per_record(&clean),
            "gathers should dominate"
        );
    }

    #[test]
    fn data_dependent_control_favors_mimd() {
        // A variable-loop kernel: MIMD executes half the unrolled work.
        let a = attrs(800, 0, 0, ControlClass::VariableLoop { max_iters: 16 });
        let masked = masked_insts(&a);
        let live = mimd_insts(&a);
        assert_eq!(masked, 800.0);
        assert_eq!(live, 400.0);
    }

    #[test]
    fn survey_reports_all_three() {
        let a = attrs(100, 2, 256, ControlClass::FixedLoop { iters: 16 });
        let s = survey(&a);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|(_, c)| *c > 0.0));
    }

    #[test]
    fn real_kernel_attributes_flow_through() {
        let mut b = IrBuilder::new("t", Domain::Scientific, 2, 1);
        let x = b.input(0);
        let y = b.input(1);
        let s = b.bin(Opcode::FAdd, x, y);
        b.output(0, s);
        let a = b.finish(ControlClass::Straight).unwrap().attributes();
        for (name, c) in survey(&a) {
            assert!(c > 0.0, "{name} produced non-positive estimate");
        }
    }
}
