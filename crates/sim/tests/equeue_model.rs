//! Property tests pinning the calendar queue to its binary-heap model.
//!
//! The determinism contract (DESIGN.md): for any interleaving of pushes
//! and pops — including pushes behind the queue's current cursor and
//! duplicate ticks — [`CalendarQueue`] emits exactly the order a
//! `BinaryHeap<Reverse<(tick, key, seq)>>` would. Small tick domains
//! force heavy duplicate-tick collisions, and a small window forces the
//! overflow and rebase paths.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::collection::vec;
use proptest::prelude::*;
use trips_sim::equeue::CalendarQueue;

/// One scripted operation: `op == 0` pops, anything else pushes at
/// `tick` (and, for the keyed tests, with `key`).
type Op = (u8, u64, usize);

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    // Tick domain 0..48 with a window of 16 exercises ring, overflow,
    // and (after drains rebase the window upward) behind-cursor pushes.
    vec((0u8..4, 0u64..48, 0usize..6), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FIFO (unkeyed) queue vs a `(tick, seq)` heap model — the dataflow
    /// engine's configuration.
    #[test]
    fn fifo_queue_matches_heap_model(ops in ops_strategy(200)) {
        let mut q: CalendarQueue<(), u64> = CalendarQueue::with_window(16);
        let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (op, tick, _) in ops {
            if op == 0 {
                prop_assert_eq!(
                    q.pop().map(|(t, (), s)| (t, s)),
                    model.pop().map(|Reverse(e)| e)
                );
            } else {
                // The payload is the model's sequence number, so a pop
                // mismatch in either tick or intra-tick order is visible.
                q.push(tick, (), seq);
                model.push(Reverse((tick, seq)));
                seq += 1;
            }
            prop_assert_eq!(q.len(), model.len());
        }
        while let Some(Reverse(e)) = model.pop() {
            prop_assert_eq!(q.pop().map(|(t, (), s)| (t, s)), Some(e));
        }
        prop_assert!(q.is_empty());
    }

    /// Keyed queue vs a `(tick, key, seq)` heap model — keys order before
    /// the sequence number, as MIMD ranks do.
    #[test]
    fn keyed_queue_matches_heap_model(ops in ops_strategy(200)) {
        let mut q: CalendarQueue<usize, u64> = CalendarQueue::with_window(16);
        let mut model: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (op, tick, key) in ops {
            if op == 0 {
                prop_assert_eq!(q.pop(), model.pop().map(|Reverse(e)| e));
            } else {
                q.push(tick, key, seq);
                model.push(Reverse((tick, key, seq)));
                seq += 1;
            }
        }
        while let Some(Reverse(e)) = model.pop() {
            prop_assert_eq!(q.pop(), Some(e));
        }
        prop_assert!(q.is_empty());
    }

    /// The MIMD ready-queue replacement specifically: the old scheduler
    /// was a seq-less `BinaryHeap<Reverse<(tick, rank)>>`, so the
    /// calendar queue must emit the identical `(tick, rank)` sequence —
    /// duplicates included — for any interleaving.
    #[test]
    fn mimd_ready_queue_is_observationally_identical(ops in ops_strategy(200)) {
        let mut q: CalendarQueue<usize, ()> = CalendarQueue::with_window(16);
        let mut model: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (op, tick, rank) in ops {
            if op == 0 {
                prop_assert_eq!(
                    q.pop().map(|(t, r, ())| (t, r)),
                    model.pop().map(|Reverse(e)| e)
                );
            } else {
                q.push(tick, rank, ());
                model.push(Reverse((tick, rank)));
            }
        }
        while let Some(Reverse(e)) = model.pop() {
            prop_assert_eq!(q.pop().map(|(t, r, ())| (t, r)), Some(e));
        }
        prop_assert!(q.is_empty());
    }

    /// Bucket granularity is unobservable: for any shift, the pop order
    /// is the same `(tick, key, seq)` total order. This is what lets the
    /// MIMD engine widen its ready-queue buckets (sparse memory-bound
    /// schedules) without any determinism audit of the callers.
    #[test]
    fn bucket_shift_is_unobservable(ops in ops_strategy(200), shift in 0u32..8) {
        let mut q: CalendarQueue<usize, u64> = CalendarQueue::with_window_shift(16, shift);
        let mut model: BinaryHeap<Reverse<(u64, usize, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (op, tick, key) in ops {
            if op == 0 {
                prop_assert_eq!(q.pop(), model.pop().map(|Reverse(e)| e));
            } else {
                q.push(tick, key, seq);
                model.push(Reverse((tick, key, seq)));
                seq += 1;
            }
        }
        while let Some(Reverse(e)) = model.pop() {
            prop_assert_eq!(q.pop(), Some(e));
        }
        prop_assert!(q.is_empty());
    }

    /// `clear` fully resets ordering state: a cleared queue behaves like
    /// a fresh one for a subsequent scripted run.
    #[test]
    fn clear_behaves_like_fresh(ops in ops_strategy(60)) {
        let mut dirty: CalendarQueue<usize, u64> = CalendarQueue::with_window(16);
        // Leave entries across all three internal regions, then clear.
        for t in [0u64, 5, 40, 2, 39] {
            dirty.push(t, 0, 0);
        }
        let _ = dirty.pop();
        dirty.clear();
        prop_assert!(dirty.is_empty());

        let mut fresh: CalendarQueue<usize, u64> = CalendarQueue::with_window(16);
        let mut seq = 0u64;
        for (op, tick, key) in ops {
            if op == 0 {
                prop_assert_eq!(dirty.pop(), fresh.pop());
            } else {
                dirty.push(tick, key, seq);
                fresh.push(tick, key, seq);
                seq += 1;
            }
        }
        while let Some(e) = fresh.pop() {
            prop_assert_eq!(dirty.pop(), Some(e));
        }
        prop_assert!(dirty.is_empty());
    }
}
