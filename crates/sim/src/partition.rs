//! Partitioned MIMD execution (§4.3): different kernels on different
//! regions of the array, concurrently.
//!
//! > "Another mode of operation is to execute different kernels on the
//! > ALUs … In real-time graphics processing for example, a rendering
//! > pipeline can be implemented by partitioning the ALUs among vertex
//! > processing, rasterization, and fragment processing kernels. Since the
//! > ALUs are homogeneous and fully programmable, the partitioning of
//! > ALUs can be dynamically determined based on scene attributes."
//!
//! A [`Partition`] assigns a contiguous range of nodes (in row-major
//! order) its own program, record count, and stream addresses; all
//! partitions run concurrently on the shared machine, contending for the
//! same memory banks and mesh — which is exactly the effect worth
//! modeling.

use dlp_common::{DlpError, SimStats};
use trips_isa::MimdProgram;

use crate::Machine;

/// One partition of the array.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The node program every node of this partition runs.
    pub program: MimdProgram,
    /// Number of nodes (taken contiguously in row-major order).
    pub nodes: usize,
    /// Records this partition processes (its `r29`).
    pub records: u64,
}

impl Machine {
    /// Run several MIMD partitions concurrently.
    ///
    /// Partition *k* occupies the next `partitions[k].nodes` nodes in
    /// row-major order; within a partition, node ranks (`r30`) run
    /// `0..nodes` and the record count (`r29`) is the partition's own, so
    /// each partition strides its records independently. Every partition's
    /// program must address its own streams (different base addresses
    /// baked into the program), since they share one memory.
    ///
    /// # Errors
    ///
    /// * [`DlpError::CapacityExceeded`] — partitions request more nodes
    ///   than the array has, or a program exceeds the L0 I-store.
    /// * Everything [`Machine::run_mimd`] can return.
    pub fn run_mimd_partitioned(
        &mut self,
        partitions: &[Partition],
    ) -> Result<SimStats, DlpError> {
        let total: usize = partitions.iter().map(|p| p.nodes).sum();
        if total > self.grid().nodes() {
            return Err(DlpError::CapacityExceeded {
                resource: "array nodes across partitions",
                needed: total,
                available: self.grid().nodes(),
            });
        }
        // Build a per-node program image with per-partition rank/record
        // conventions. We reuse run_mimd's engine by translating partition
        // ranks into global ranks: run_mimd assigns rank r to the r-th
        // non-empty program, numbering contiguous partitions consecutively,
        // so a partition's nodes get consecutive global ranks. Each
        // program's stream loop must therefore subtract its partition's
        // first rank — which we arrange here by *rewriting* the register
        // conventions through a small prologue is not possible post-
        // assembly, so instead the engine provides partition-aware
        // conventions directly.
        let mut per_node: Vec<MimdProgram> = Vec::with_capacity(total);
        let mut bases = Vec::with_capacity(partitions.len());
        for p in partitions {
            bases.push(per_node.len());
            for _ in 0..p.nodes {
                per_node.push(p.program.clone());
            }
        }
        self.run_mimd_with_conventions(&per_node, &|global_rank| {
            // Find the partition owning this global rank.
            let k = match bases.binary_search(&global_rank) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            let local_rank = (global_rank - bases[k]) as u64;
            (local_rank, partitions[k].nodes as u64, partitions[k].records)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_common::{GridShape, TimingParams, Value};
    use trips_isa::{MemSpace, MimdAsm, Opcode, REG_NODE_COUNT, REG_NODE_ID, REG_RECORDS};

    use crate::MechanismSet;

    /// A stream kernel: out[rec] = in[rec] * scale, with configurable
    /// stream bases.
    fn scaled_copy(base_in: i64, base_out: i64, scale: i64) -> MimdProgram {
        let mut asm = MimdAsm::new();
        asm.alu(Opcode::Mov, 1, REG_NODE_ID, 0);
        asm.label("loop");
        asm.alu(Opcode::Tgeu, 2, 1, REG_RECORDS);
        asm.bnz(2, "done");
        asm.alui(Opcode::Add, 3, 1, base_in);
        asm.ld(MemSpace::Smc, 4, 3, 0);
        asm.alui(Opcode::Mul, 4, 4, scale);
        asm.alui(Opcode::Add, 3, 1, base_out);
        asm.st(MemSpace::Smc, 3, 0, 4);
        asm.alu(Opcode::Add, 1, 1, REG_NODE_COUNT);
        asm.jmp("loop");
        asm.label("done");
        asm.halt();
        asm.assemble().unwrap()
    }

    #[test]
    fn two_partitions_run_concurrently_and_correctly() {
        let mut m = Machine::new(GridShape::new(8, 8), TimingParams::default(), MechanismSet::mimd());
        for i in 0..64u64 {
            m.memory_mut().write(i, Value::from_u64(i + 1));
        }
        m.stage_smc(0..4096).unwrap();
        let parts = [
            Partition { program: scaled_copy(0, 1000, 2), nodes: 32, records: 40 },
            Partition { program: scaled_copy(0, 2000, 3), nodes: 32, records: 24 },
        ];
        let stats = m.run_mimd_partitioned(&parts).unwrap();
        for i in 0..40u64 {
            assert_eq!(m.memory().read(1000 + i).as_u64(), (i + 1) * 2, "partition 0 rec {i}");
        }
        for i in 0..24u64 {
            assert_eq!(m.memory().read(2000 + i).as_u64(), (i + 1) * 3, "partition 1 rec {i}");
        }
        assert!(stats.cycles() > 0);
    }

    #[test]
    fn oversubscribed_partitions_rejected() {
        let mut m = Machine::new(GridShape::new(4, 4), TimingParams::default(), MechanismSet::mimd());
        let parts = [
            Partition { program: scaled_copy(0, 100, 1), nodes: 10, records: 4 },
            Partition { program: scaled_copy(0, 200, 1), nodes: 10, records: 4 },
        ];
        assert!(matches!(
            m.run_mimd_partitioned(&parts),
            Err(DlpError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn partition_sharing_slows_both_versus_exclusive_runs() {
        // Running two partitions concurrently on half the array each must
        // cost no less than the slower of the two run alone on half the
        // array (they share memory banks and the mesh).
        let prog_a = scaled_copy(0, 1000, 2);
        let prog_b = scaled_copy(0, 2000, 3);
        let solo = |prog: &MimdProgram, recs: u64| {
            let mut m =
                Machine::new(GridShape::new(8, 8), TimingParams::default(), MechanismSet::mimd());
            for i in 0..64u64 {
                m.memory_mut().write(i, Value::from_u64(i + 1));
            }
            m.stage_smc(0..4096).unwrap();
            let parts = [Partition { program: prog.clone(), nodes: 32, records: recs }];
            m.run_mimd_partitioned(&parts).unwrap().cycles()
        };
        let a = solo(&prog_a, 64);
        let b = solo(&prog_b, 64);
        let mut m = Machine::new(GridShape::new(8, 8), TimingParams::default(), MechanismSet::mimd());
        for i in 0..64u64 {
            m.memory_mut().write(i, Value::from_u64(i + 1));
        }
        m.stage_smc(0..4096).unwrap();
        let both = m
            .run_mimd_partitioned(&[
                Partition { program: prog_a, nodes: 32, records: 64 },
                Partition { program: prog_b, nodes: 32, records: 64 },
            ])
            .unwrap()
            .cycles();
        assert!(both >= a.max(b), "shared run {both} vs solos {a}/{b}");
    }
}
