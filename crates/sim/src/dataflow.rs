//! The block-atomic dataflow engine (baseline, S, S-O, S-O-D machines).
//!
//! A [`DataflowBlock`] is mapped onto the array and executed for `N`
//! iterations. Three regimes are modeled, selected by the machine's
//! [`MechanismSet`]:
//!
//! * **Baseline** — every iteration is a fresh block instance, re-fetched
//!   and re-mapped through the pipelined block-fetch engine, with up to
//!   `baseline_frames` instances in flight concurrently (TRIPS frames) and
//!   constants re-read from the register file each instance. Functional
//!   units, the operand mesh, register banks and memory ports are shared
//!   across in-flight instances, so contention is modeled faithfully.
//! * **Instruction revitalization** — the block is fetched once; between
//!   iterations the block control broadcasts a revitalize signal (fixed
//!   delay) that resets reservation-station status bits. Iterations are
//!   serial (the broadcast is a barrier), which is why the scheduler
//!   unrolls aggressively to amortize it (§4.3).
//! * **Operand revitalization** — additionally, operands marked persistent
//!   (and persistent register reads) survive revitalization, so constants
//!   are delivered once per kernel.
//!
//! Events are dispatched through a [`CalendarQueue`] in `(tick, seq)`
//! order — the determinism contract in DESIGN.md — with all per-run
//! tables held in a recyclable [`DataflowScratch`] so repeated runs
//! through one [`EngineArena`](crate::EngineArena) allocate nothing in
//! steady state.

use std::collections::HashMap;

use dlp_common::{Coord, DlpError, SimStats, Tick, Value};
use trips_isa::{DataflowBlock, MemSpace, OpClass, OpRole, Opcode, Port, Slot, Target};
use trips_mem::Throttle;
use trips_noc::Endpoint;

use crate::equeue::CalendarQueue;
use crate::{EngineArena, Machine};

/// Reservation-station runtime state for one instruction in one frame.
#[derive(Clone, Default)]
struct RsState {
    /// Operand values present at [Left, Right, Pred].
    ops: [Option<Value>; 3],
    executed: bool,
}

pub(crate) fn port_idx(p: Port) -> usize {
    match p {
        Port::Left => 0,
        Port::Right => 1,
        Port::Pred => 2,
    }
}

/// A [`Target`] with every per-event lookup resolved at block-map time:
/// port targets carry the destination's dense instruction index (no
/// slot-hash lookup on delivery) and register targets carry their bank
/// column.
#[derive(Clone, Copy)]
pub(crate) enum ResolvedTarget {
    /// An operand port of instruction `inst`, which lives on `node`.
    Port { inst: usize, node: Coord, port: Port },
    /// Architectural register `reg`, written through the bank above
    /// `bank_col`.
    Reg { reg: u16, bank_col: u8 },
}

/// Events, dispatched in (tick, sequence) order.
enum Ev {
    /// An operand arrives at an instruction port.
    Operand { inst: usize, port: Port, value: Value },
    /// A bookkeeping completion (store drain, register-write arrival) that
    /// extends the iteration's completion tick without enabling anything.
    Quiesce,
}

/// Reserve an issue slot at cycle granularity on a per-tick [`Throttle`].
pub(crate) fn reserve_cycle(t: &mut Throttle, now: Tick) -> Tick {
    (t.reserve(now / 2) * 2).max(now)
}

/// Per-frame bookkeeping.
struct Frame {
    rs: Vec<RsState>,
    executed: usize,
    /// Outstanding events belonging to this frame.
    pending: usize,
    /// Latest event tick seen for this frame (the iteration's completion).
    last_tick: Tick,
    /// The kernel iteration this frame is running.
    iter: u64,
}

impl Frame {
    fn new(len: usize) -> Self {
        Frame { rs: vec![RsState::default(); len], executed: 0, pending: 0, last_tick: 0, iter: 0 }
    }

    /// Restore the pristine `Frame::new` state, retaining the `rs`
    /// allocation.
    fn reset(&mut self, len: usize) {
        self.rs.clear();
        self.rs.resize(len, RsState::default());
        self.executed = 0;
        self.pending = 0;
        self.last_tick = 0;
        self.iter = 0;
    }
}

/// Recyclable storage for one dataflow run, owned by an
/// [`EngineArena`](crate::EngineArena). Every table is rebuilt per run
/// (the contents depend on the block and machine) but the allocations —
/// including the calendar queue's bucket ring — carry over, so a sweep
/// worker's steady state is allocation-free.
#[derive(Default)]
pub(crate) struct DataflowScratch {
    /// The scheduler: `(frame, event)` pairs in `(tick, seq)` order.
    events: CalendarQueue<(), (usize, Ev)>,
    frames: Vec<Frame>,
    /// Which ports of each instruction must be filled before issue.
    pub(crate) required: Vec<[bool; 3]>,
    /// Every instruction's resolved targets, flattened: instruction `i`
    /// owns `resolved[span.0..span.1]` for `span = resolved_span[i]`, in
    /// the same order as `insts()[i].targets` (so LMW word `k` still
    /// maps to target `k`).
    pub(crate) resolved: Vec<ResolvedTarget>,
    pub(crate) resolved_span: Vec<(u32, u32)>,
    /// Port destinations of register reads, flattened like `resolved`.
    pub(crate) reg_read_dsts: Vec<(usize, Port, Coord)>,
    pub(crate) reg_read_span: Vec<(u32, u32)>,
    /// Dense grid index of each instruction's node, for issue throttling.
    pub(crate) inst_node: Vec<usize>,
    /// Per-node issue throttles, indexed by dense grid index.
    node_issue: Vec<Throttle>,
    reg_bank_ports: Vec<Throttle>,
    /// Slot → dense instruction index (setup-time only: the hot paths go
    /// through the pre-resolved tables above).
    idx_of: HashMap<Slot, usize>,
    /// Fingerprint of the last block this scratch validated —
    /// `(block address, block length, grid, slots per node)`. Validation
    /// is O(block) of hashing, so a sweep re-running one prepared (and
    /// already-validated) block across many cells pays it once per
    /// worker instead of once per run. Pre-seeded by
    /// [`EngineArena::mark_dataflow_block_validated`](crate::EngineArena::mark_dataflow_block_validated)
    /// for blocks a scheduler already validated.
    pub(crate) validated: Option<(usize, usize, dlp_common::GridShape, usize)>,
}

impl DataflowScratch {
    /// Validate `block` for `m`'s shape (memoized on [`Self::validated`])
    /// and rebuild every block-shape table: slot index, required-port
    /// issue conditions, resolved targets, register-read destinations,
    /// and per-instruction node indices. Shared by the scalar engine and
    /// the lane-batched engine ([`crate::batch`]) so both execute from
    /// bit-identical routing and readiness tables.
    pub(crate) fn build_tables(
        &mut self,
        block: &DataflowBlock,
        m: &Machine,
    ) -> Result<(), DlpError> {
        let s = self;
        let fingerprint = (
            std::ptr::from_ref(block) as usize,
            block.len(),
            m.grid(),
            m.params().core.rs_slots_per_node,
        );
        if s.validated != Some(fingerprint) {
            block.validate(m.grid(), m.params().core.rs_slots_per_node)?;
            s.validated = Some(fingerprint);
        }
        let mech = m.mechanisms();
        for inst in block.insts() {
            match inst.op {
                Opcode::Lut if !mech.l0_data_store => {
                    return Err(DlpError::Unsupported {
                        what: "lut instruction without the L0 data store".into(),
                    })
                }
                Opcode::Load(MemSpace::Smc) | Opcode::Store(MemSpace::Smc) | Opcode::Lmw
                    if !mech.smc =>
                {
                    return Err(DlpError::Unsupported {
                        what: "SMC memory access without the SMC mechanism".into(),
                    })
                }
                _ => {}
            }
        }

        s.idx_of.clear();
        for (i, inst) in block.insts().iter().enumerate() {
            s.idx_of.insert(inst.slot, i);
        }

        // `required` doubles as the fed-port table while it is built:
        // first mark which ports are fed, then rewrite each entry into
        // the issue condition in place.
        s.required.clear();
        s.required.resize(block.len(), [false; 3]);
        {
            let idx_of = &s.idx_of;
            let fed = &mut s.required;
            let mut mark = |t: &Target| {
                if let Target::Port { slot, port } = t {
                    fed[idx_of[slot]][port_idx(*port)] = true;
                }
            };
            for inst in block.insts() {
                for t in &inst.targets {
                    mark(t);
                }
            }
            for rr in block.reg_reads() {
                for t in &rr.targets {
                    mark(t);
                }
            }
        }
        for (i, inst) in block.insts().iter().enumerate() {
            let fed = s.required[i];
            let (l, r, p) = inst.op.ports();
            s.required[i] = [
                l && (fed[0] || !matches!(inst.op, Opcode::Lut)),
                // A store's immediate is an address offset, so its right
                // port (the stored value) still comes from the network.
                r && (inst.imm.is_none() || matches!(inst.op, Opcode::Store(_))),
                p,
            ];
        }

        let banks = m.params().core.reg_banks.max(1);
        let reg_cols = m.grid().cols();
        {
            let idx_of = &s.idx_of;
            let resolve = |t: &Target| match *t {
                Target::Port { slot, port } => {
                    ResolvedTarget::Port { inst: idx_of[&slot], node: slot.node, port }
                }
                Target::Reg(reg) => {
                    let bank_col = ((reg % banks as u16) as u8).min(reg_cols - 1);
                    ResolvedTarget::Reg { reg, bank_col }
                }
            };
            s.resolved.clear();
            s.resolved_span.clear();
            for inst in block.insts() {
                let start = s.resolved.len() as u32;
                s.resolved.extend(inst.targets.iter().map(resolve));
                s.resolved_span.push((start, s.resolved.len() as u32));
            }
            s.reg_read_dsts.clear();
            s.reg_read_span.clear();
            for rr in block.reg_reads() {
                let start = s.reg_read_dsts.len() as u32;
                s.reg_read_dsts.extend(rr.targets.iter().filter_map(|t| match *t {
                    Target::Port { slot, port } => Some((idx_of[&slot], port, slot.node)),
                    Target::Reg(_) => None,
                }));
                s.reg_read_span.push((start, s.reg_read_dsts.len() as u32));
            }
        }
        let grid = m.grid();
        s.inst_node.clear();
        s.inst_node.extend(block.insts().iter().map(|inst| grid.index(inst.slot.node)));
        Ok(())
    }
}

struct Engine<'a> {
    m: &'a mut Machine,
    block: &'a DataflowBlock,
    s: &'a mut DataflowScratch,
    stats: SimStats,
}

impl<'a> Engine<'a> {
    fn new(
        m: &'a mut Machine,
        block: &'a DataflowBlock,
        n_frames: usize,
        s: &'a mut DataflowScratch,
    ) -> Result<Self, DlpError> {
        s.build_tables(block, m)?;

        // A failed previous run may have left events queued; every other
        // table below is rebuilt unconditionally.
        s.events.clear();

        let banks = m.params().core.reg_banks.max(1);
        let reads_per = m.params().core.reg_reads_per_bank_per_cycle.max(1);
        s.node_issue.clear();
        s.node_issue.resize(m.grid().nodes(), Throttle::new(1));
        s.reg_bank_ports.clear();
        s.reg_bank_ports.resize(banks as usize, Throttle::new(reads_per));

        s.frames.truncate(n_frames);
        for f in &mut s.frames {
            f.reset(block.len());
        }
        while s.frames.len() < n_frames {
            s.frames.push(Frame::new(block.len()));
        }

        Ok(Engine { block, s, stats: SimStats::new(), m })
    }

    fn push(&mut self, frame: usize, tick: Tick, ev: Ev) {
        self.s.frames[frame].pending += 1;
        self.s.events.push(tick, (), (frame, ev));
    }

    /// Seed one iteration's initial activity at `start` on `frame`.
    fn seed_iteration(&mut self, frame: usize, start: Tick, iter: u64, first: bool) {
        let block = self.block;
        self.s.frames[frame].iter = iter;
        self.s.frames[frame].last_tick = self.s.frames[frame].last_tick.max(start);
        let op_revit = self.m.mechanisms().operand_revitalization;
        // Register reads.
        let banks = self.s.reg_bank_ports.len() as u16;
        let reg_cols = self.m.grid().cols();
        for (ri, rr) in block.reg_reads().iter().enumerate() {
            if !first && op_revit && rr.persistent {
                continue; // value survived revitalization
            }
            let bank = (rr.reg % banks) as usize;
            let inject = reserve_cycle(&mut self.s.reg_bank_ports[bank], start);
            self.stats.reg_reads += 1;
            let bank_col = (bank as u8).min(reg_cols - 1);
            let value = self.m.regs[rr.reg as usize];
            let (span_start, span_end) = self.s.reg_read_span[ri];
            for k in span_start..span_end {
                let (inst, port, node) = self.s.reg_read_dsts[k as usize];
                let arrive = self.m.router.send_faulty(
                    Endpoint::RegBank(bank_col),
                    Endpoint::Node(node),
                    inject,
                    &mut self.m.fault,
                );
                let arrive = self.m.fault.operand_write(arrive);
                self.push(frame, arrive, Ev::Operand { inst, port, value });
            }
        }
        // Source instructions with no required operands (MovI, Iter,
        // constant-indexed Lut) fire at iteration start.
        for i in 0..block.len() {
            if self.s.frames[frame].rs[i].executed {
                continue;
            }
            if self.ready(frame, i) {
                self.execute(frame, i, start);
            }
        }
    }

    fn ready(&self, frame: usize, i: usize) -> bool {
        let rs = &self.s.frames[frame].rs[i];
        !rs.executed && (0..3).all(|p| !self.s.required[i][p] || rs.ops[p].is_some())
    }

    /// Issue and execute instruction `i` of `frame`, whose operands became
    /// complete at `t`; schedules all downstream events.
    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, frame: usize, i: usize, t: Tick) {
        let block = self.block;
        let inst = &block.insts()[i];
        let node = inst.slot.node;
        let node_idx = self.s.inst_node[i];
        let issue = reserve_cycle(&mut self.s.node_issue[node_idx], t);
        self.s.frames[frame].rs[i].executed = true;
        self.s.frames[frame].executed += 1;

        let lat = inst.op.latency(&self.m.params().ops);
        let rs = &self.s.frames[frame].rs[i];
        let l = rs.ops[0].unwrap_or(Value::ZERO);
        let r = rs.ops[1].or(inst.imm).unwrap_or(Value::ZERO);
        let p = rs.ops[2].unwrap_or(Value::ZERO);
        let iter = self.s.frames[frame].iter;

        // Metric accounting.
        match inst.op {
            Opcode::Load(_) | Opcode::Lmw => self.stats.loads += 1,
            Opcode::Store(_) => self.stats.stores += 1,
            Opcode::Lut => self.stats.l0_accesses += 1,
            _ => {}
        }
        let countable = !inst.op.is_mem() && inst.op.class() != OpClass::Mov;
        if countable && inst.role == OpRole::Useful {
            self.stats.useful_ops += 1;
        } else {
            self.stats.overhead_ops += 1;
        }

        let row = node.row;
        match inst.op {
            Opcode::MovI => {
                let v = inst.imm.unwrap_or(Value::ZERO);
                self.fan_out(frame, i, issue + lat, v);
            }
            Opcode::Iter => {
                self.fan_out(frame, i, issue + lat, Value::from_u64(iter));
            }
            Opcode::Nop => {}
            Opcode::Lut => {
                let index = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
                let v = self.m.l0_data.get(index as usize).copied().unwrap_or(Value::ZERO);
                let done = issue + self.m.params().mem.l0_latency;
                self.fan_out(frame, i, done, v);
            }
            Opcode::Load(space) => {
                let addr = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
                let handoff = issue + lat;
                let req = self.m.router.send_faulty(
                    Endpoint::Node(node),
                    Endpoint::MemPort(row),
                    handoff,
                    &mut self.m.fault,
                );
                let served = match space {
                    MemSpace::Smc => {
                        self.stats.smc_accesses += 1;
                        self.m.smc[row as usize].access_faulty(addr, req, &mut self.m.fault)
                    }
                    MemSpace::L1 => {
                        self.stats.l1_accesses += 1;
                        let (t2, hit) =
                            self.m.l1[row as usize].access_faulty(addr, req, &mut self.m.fault);
                        if !hit {
                            self.stats.l1_misses += 1;
                        }
                        t2
                    }
                };
                let back = self.m.router.send_faulty(
                    Endpoint::MemPort(row),
                    Endpoint::Node(node),
                    served,
                    &mut self.m.fault,
                );
                let v = self.m.mem.read(addr);
                self.fan_out(frame, i, back, v);
            }
            Opcode::Lmw => {
                let addr = l.as_u64();
                let n = inst.imm.map_or(0, |v| v.as_u64()) as u32;
                let handoff = issue + lat;
                let req = self.m.router.send_faulty(
                    Endpoint::Node(node),
                    Endpoint::MemPort(row),
                    handoff,
                    &mut self.m.fault,
                );
                self.stats.smc_accesses += 1;
                self.stats.lmw_words += u64::from(n);
                let served = self.m.smc[row as usize].access_wide_faulty(
                    addr,
                    n,
                    req,
                    &mut self.m.fault,
                );
                // The streaming channel delivers word k straight to target k.
                let (span_start, span_end) = self.s.resolved_span[i];
                for (k, ti) in (span_start..span_end).enumerate() {
                    let tgt = self.s.resolved[ti as usize];
                    let v = self.m.mem.read(addr + k as u64);
                    self.deliver(frame, tgt, Endpoint::MemPort(row), served, v);
                }
            }
            Opcode::Store(space) => {
                let addr = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
                self.m.mem.write(addr, r);
                let handoff = issue + lat;
                let req = self.m.router.send_faulty(
                    Endpoint::Node(node),
                    Endpoint::MemPort(row),
                    handoff,
                    &mut self.m.fault,
                );
                let drained = match space {
                    MemSpace::Smc => {
                        let t2 = self.m.stb[row as usize].push_faulty(addr, req, &mut self.m.fault);
                        self.m.smc[row as usize].store_faulty(addr, t2, &mut self.m.fault)
                    }
                    MemSpace::L1 => {
                        self.stats.l1_accesses += 1;
                        let (t2, hit) =
                            self.m.l1[row as usize].access_faulty(addr, req, &mut self.m.fault);
                        if !hit {
                            self.stats.l1_misses += 1;
                        }
                        t2
                    }
                };
                self.push(frame, drained, Ev::Quiesce);
            }
            _ => {
                let v = trips_isa::exec::eval(inst.op, l, r, p);
                self.fan_out(frame, i, issue + lat, v);
            }
        }
    }

    /// Route instruction `i`'s result to all its targets at `t`.
    fn fan_out(&mut self, frame: usize, i: usize, t: Tick, v: Value) {
        let node = self.block.insts()[i].slot.node;
        let (span_start, span_end) = self.s.resolved_span[i];
        for ti in span_start..span_end {
            let tgt = self.s.resolved[ti as usize];
            self.deliver(frame, tgt, Endpoint::Node(node), t, v);
        }
        if span_start == span_end {
            self.push(frame, t, Ev::Quiesce);
        }
    }

    fn deliver(&mut self, frame: usize, tgt: ResolvedTarget, from: Endpoint, t: Tick, v: Value) {
        match tgt {
            ResolvedTarget::Port { inst, node, port } => {
                let arrive =
                    self.m.router.send_faulty(from, Endpoint::Node(node), t, &mut self.m.fault);
                // The destination reservation station is an operand store:
                // a flipped entry is detected by parity and re-latched.
                let arrive = self.m.fault.operand_write(arrive);
                self.push(frame, arrive, Ev::Operand { inst, port, value: v });
            }
            ResolvedTarget::Reg { reg, bank_col } => {
                let arrive =
                    self.m.router.send_faulty(from, Endpoint::RegBank(bank_col), t, &mut self.m.fault);
                self.m.regs[reg as usize] = v;
                self.stats.reg_writes += 1;
                self.push(frame, arrive, Ev::Quiesce);
            }
        }
    }

    /// Reset a frame's reservation stations for its next iteration.
    /// `keep_persistent` preserves operand-revitalized values.
    fn reset_frame(&mut self, frame: usize, keep_persistent: bool) {
        let op_revit = keep_persistent && self.m.mechanisms().operand_revitalization;
        for (i, state) in self.s.frames[frame].rs.iter_mut().enumerate() {
            state.executed = false;
            let persist = self.block.insts()[i].persistent;
            for (pi, port) in [Port::Left, Port::Right, Port::Pred].into_iter().enumerate() {
                if !(op_revit && persist.contains(port)) {
                    state.ops[pi] = None;
                }
            }
        }
        self.s.frames[frame].executed = 0;
    }
}

impl Machine {
    /// Execute `block` for `iterations` kernel iterations and return the
    /// run's statistics (including any pending setup cost).
    ///
    /// The regime (pipelined baseline refetch vs serial instruction
    /// revitalization) follows the machine's [`crate::MechanismSet`]; see the
    /// module docs.
    ///
    /// # Errors
    ///
    /// * [`DlpError::MalformedProgram`] — the block fails validation or
    ///   deadlocks (an unfed port).
    /// * [`DlpError::Unsupported`] — the block uses a mechanism (SMC, L0)
    ///   the machine does not have.
    /// * [`DlpError::Watchdog`] — the run exceeded the machine's watchdog
    ///   (see [`Machine::set_watchdog`]).
    pub fn run_dataflow(
        &mut self,
        block: &DataflowBlock,
        iterations: u64,
    ) -> Result<SimStats, DlpError> {
        let mut arena = EngineArena::new();
        self.run_dataflow_in(block, iterations, &mut arena)
    }

    /// As [`Machine::run_dataflow`], reusing `arena`'s scratch storage —
    /// bit-identical statistics, but a caller running many blocks (a
    /// sweep worker) allocates nothing once the arena has warmed up.
    ///
    /// # Errors
    ///
    /// As [`Machine::run_dataflow`].
    pub fn run_dataflow_in(
        &mut self,
        block: &DataflowBlock,
        iterations: u64,
        arena: &mut EngineArena,
    ) -> Result<SimStats, DlpError> {
        if self.mechanisms().local_pc {
            return Err(DlpError::Unsupported {
                what: "dataflow blocks on a machine configured for MIMD (local PCs)".into(),
            });
        }
        let base = self.begin_run();
        let inst_revit = self.mechanisms().inst_revitalization;
        let n_frames = if inst_revit {
            1
        } else {
            (self.params().fetch.baseline_frames.max(1) as usize).min(iterations.max(1) as usize)
        };
        let revitalize_delay = self.params().fetch.revitalize_delay;

        let mut engine = Engine::new(self, block, n_frames, &mut arena.dataflow)?;
        engine.stats = base;
        engine.stats.iterations = iterations;
        if iterations == 0 {
            return Ok(engine.stats);
        }

        // Seed the initial frames through the (pipelined) fetch engine:
        // map latency once, then throughput-limited block streaming.
        let per_fetch = if inst_revit {
            engine.m.fetch_ticks(block.len())
        } else {
            engine.m.fetch_ticks_baseline(block.len())
        };
        let mut fetch_done = engine.stats.ticks + engine.m.params().fetch.map_overhead;
        let mut next_iter: u64 = 0;
        for frame in 0..n_frames {
            fetch_done += per_fetch;
            engine.stats.blocks_fetched += 1;
            engine.seed_iteration(frame, fetch_done, next_iter, true);
            next_iter += 1;
            if next_iter >= iterations {
                break;
            }
        }

        // Event loop across all in-flight frames.
        let mut done_iters: u64 = 0;
        let mut final_tick: Tick = fetch_done;
        while let Some((tick, (), (frame, ev))) = engine.s.events.pop() {
            if tick > engine.m.watchdog_ticks {
                return Err(DlpError::Watchdog {
                    ticks: tick,
                    context: format!(
                        "dataflow block '{}' ({done_iters}/{iterations} iterations done)",
                        block.name()
                    ),
                });
            }
            if let Some(fatal) = engine.m.fault.fatal() {
                return Err(fatal.to_error());
            }
            engine.s.frames[frame].pending -= 1;
            engine.s.frames[frame].last_tick = engine.s.frames[frame].last_tick.max(tick);
            match ev {
                Ev::Operand { inst, port, value } => {
                    engine.s.frames[frame].rs[inst].ops[port_idx(port)] = Some(value);
                    if engine.ready(frame, inst) {
                        engine.execute(frame, inst, tick);
                    }
                }
                Ev::Quiesce => {}
            }
            if engine.s.frames[frame].pending == 0 {
                // Iteration complete (or deadlocked).
                if engine.s.frames[frame].executed != block.len() {
                    return Err(DlpError::MalformedProgram {
                        detail: format!(
                            "block {}: iteration {} stalled with {}/{} instructions executed",
                            block.name(),
                            engine.s.frames[frame].iter,
                            engine.s.frames[frame].executed,
                            block.len()
                        ),
                    });
                }
                done_iters += 1;
                let t = engine.s.frames[frame].last_tick;
                final_tick = final_tick.max(t);
                if next_iter < iterations {
                    let start = if inst_revit {
                        engine.stats.revitalizations += 1;
                        engine.reset_frame(frame, true);
                        t + revitalize_delay
                    } else {
                        fetch_done += per_fetch;
                        engine.stats.blocks_fetched += 1;
                        engine.reset_frame(frame, false);
                        t.max(fetch_done)
                    };
                    engine.seed_iteration(frame, start, next_iter, false);
                    next_iter += 1;
                }
            }
        }

        // A fault escalated by the very last event has no successor pop to
        // observe it — catch it before declaring the run complete.
        if let Some(fatal) = engine.m.fault.fatal() {
            return Err(fatal.to_error());
        }

        if done_iters != iterations {
            return Err(DlpError::MalformedProgram {
                detail: format!(
                    "block {}: completed {done_iters}/{iterations} iterations",
                    block.name()
                ),
            });
        }

        let mut stats = engine.stats;
        stats.ticks = final_tick;
        let net = self.router.stats();
        stats.net_msgs = net.msgs;
        stats.net_hops = net.hops;
        stats.record_faults(self.fault.take_stats());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_common::{Coord, GridShape, TimingParams};
    use trips_isa::{PlacedInst, PortSet, RegRead, Slot};

    use crate::MechanismSet;

    fn machine(mech: MechanismSet) -> Machine {
        Machine::new(GridShape::new(8, 8), TimingParams::default(), mech)
    }

    fn slot(r: u8, c: u8, i: u16) -> Slot {
        Slot::new(Coord::new(r, c), i)
    }

    /// in -> add(imm 5) -> reg0, one source movi.
    fn tiny_block() -> DataflowBlock {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let mut a = PlacedInst::new(s0, Opcode::MovI);
        a.imm = Some(Value::from_u64(10));
        a.targets = vec![Target::port(s1, Port::Left)];
        let mut b = PlacedInst::new(s1, Opcode::Add);
        b.imm = Some(Value::from_u64(5));
        b.targets = vec![Target::Reg(0)];
        DataflowBlock::new("tiny", vec![a, b], vec![])
    }

    #[test]
    fn computes_correct_value() {
        let mut m = machine(MechanismSet::baseline());
        let stats = m.run_dataflow(&tiny_block(), 1).unwrap();
        assert_eq!(m.reg(0).as_u64(), 15);
        assert_eq!(stats.iterations, 1);
        assert!(stats.ticks > 0);
        assert_eq!(stats.useful_ops, 1); // the add
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        // The same arena threaded through heterogeneous runs (different
        // blocks, frame counts, mechanism sets) must not perturb any
        // statistic relative to fresh-arena runs.
        let mut arena = EngineArena::new();
        let mut m = machine(MechanismSet::baseline());
        let fresh_base = m.run_dataflow(&tiny_block(), 10).unwrap();
        let mut m = machine(MechanismSet::baseline());
        let arena_base = m.run_dataflow_in(&tiny_block(), 10, &mut arena).unwrap();
        assert_eq!(fresh_base, arena_base, "baseline: arena == fresh");

        let mut m = machine(MechanismSet::simd());
        let fresh_revit = m.run_dataflow(&const_block(false), 20).unwrap();
        let mut m = machine(MechanismSet::simd());
        let arena_revit = m.run_dataflow_in(&const_block(false), 20, &mut arena).unwrap();
        assert_eq!(fresh_revit, arena_revit, "revitalized: arena == fresh");

        // And back to the first block: stale tables must not leak.
        let mut m = machine(MechanismSet::baseline());
        let again = m.run_dataflow_in(&tiny_block(), 10, &mut arena).unwrap();
        assert_eq!(fresh_base, again, "arena reused across blocks");
    }

    #[test]
    fn iter_opcode_produces_indices() {
        // iter -> store to addr iter (order-independent check).
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let s2 = slot(0, 2, 0);
        let mut a = PlacedInst::new(s0, Opcode::Iter);
        a.targets = vec![Target::port(s1, Port::Left), Target::port(s2, Port::Right)];
        let mut addr = PlacedInst::new(s1, Opcode::Add);
        addr.imm = Some(Value::from_u64(100));
        addr.targets = vec![Target::port(s2, Port::Left)];
        let st = PlacedInst::new(s2, Opcode::Store(MemSpace::L1));
        let blk = DataflowBlock::new("it", vec![a, addr, st], vec![]);
        let mut m = machine(MechanismSet::simd_operand());
        // SIMD machine without SMC ops: store via L1 is fine.
        let stats = m.run_dataflow(&blk, 5).unwrap();
        for i in 0..5u64 {
            assert_eq!(m.memory().read(100 + i).as_u64(), i, "iteration {i}");
        }
        assert_eq!(stats.revitalizations, 4);
        assert_eq!(stats.blocks_fetched, 1);
    }

    #[test]
    fn baseline_refetches_every_iteration() {
        let mut m = machine(MechanismSet::baseline());
        let stats = m.run_dataflow(&tiny_block(), 10).unwrap();
        assert_eq!(stats.blocks_fetched, 10);
        assert_eq!(stats.revitalizations, 0);
    }

    #[test]
    fn baseline_pipelines_blocks_across_frames() {
        // With 8 frames in flight, 64 iterations should take far less than
        // 64 × (single-iteration latency).
        let mut m = machine(MechanismSet::baseline());
        let one = m.run_dataflow(&tiny_block(), 1).unwrap();
        let mut m2 = machine(MechanismSet::baseline());
        let many = m2.run_dataflow(&tiny_block(), 64).unwrap();
        assert!(
            many.ticks < one.ticks * 40,
            "64 iterations ({}) should pipeline, not serialize ({} each)",
            many.ticks,
            one.ticks
        );
    }

    #[test]
    fn frames_are_bounded_by_iteration_count() {
        // A 2-iteration run must not seed 8 frames' worth of fetches.
        let mut m = machine(MechanismSet::baseline());
        let stats = m.run_dataflow(&tiny_block(), 2).unwrap();
        assert_eq!(stats.blocks_fetched, 2);
    }

    #[test]
    fn revitalization_avoids_refetch_and_is_faster_per_fetch() {
        let mut m = machine(MechanismSet::simd());
        let revit = m.run_dataflow(&tiny_block(), 50).unwrap();
        assert_eq!(revit.blocks_fetched, 1);
        assert_eq!(revit.revitalizations, 49);
    }

    /// A block with a register-read constant: iter + r5 -> store at iter.
    fn const_block(persistent: bool) -> DataflowBlock {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let s2 = slot(0, 2, 0);
        let s3 = slot(0, 3, 0);
        let mut it = PlacedInst::new(s0, Opcode::Iter);
        it.targets = vec![Target::port(s1, Port::Left), Target::port(s3, Port::Left)];
        let mut add = PlacedInst::new(s1, Opcode::Add);
        add.targets = vec![Target::port(s2, Port::Right)];
        if persistent {
            add.persistent = PortSet::EMPTY.with(Port::Right);
        }
        let mut addr = PlacedInst::new(s3, Opcode::Add);
        addr.imm = Some(Value::from_u64(200));
        addr.targets = vec![Target::port(s2, Port::Left)];
        let st = PlacedInst::new(s2, Opcode::Store(MemSpace::L1));
        let rr = RegRead { reg: 5, targets: vec![Target::port(s1, Port::Right)], persistent };
        DataflowBlock::new("const", vec![it, add, addr, st], vec![rr])
    }

    #[test]
    fn operand_revitalization_reads_register_once() {
        let mut m = machine(MechanismSet::simd());
        m.set_reg(5, Value::from_u64(100));
        let s = m.run_dataflow(&const_block(false), 20).unwrap();
        assert_eq!(s.reg_reads, 20);
        assert_eq!(m.memory().read(200 + 19).as_u64(), 119);

        let mut m = machine(MechanismSet::simd_operand());
        m.set_reg(5, Value::from_u64(100));
        let s = m.run_dataflow(&const_block(true), 20).unwrap();
        assert_eq!(s.reg_reads, 1, "persistent constant read once");
        assert_eq!(m.memory().read(200 + 19).as_u64(), 119);
    }

    /// iter -> load(smc or l1) from addr iter -> store to 300+iter.
    fn load_store_block(space: MemSpace) -> DataflowBlock {
        let s0 = slot(2, 0, 0);
        let s1 = slot(2, 1, 0);
        let s2 = slot(2, 2, 0);
        let s3 = slot(2, 3, 0);
        let mut it = PlacedInst::new(s0, Opcode::Iter);
        it.targets = vec![Target::port(s1, Port::Left), Target::port(s3, Port::Left)];
        let mut ld = PlacedInst::new(s1, Opcode::Load(space));
        ld.targets = vec![Target::port(s2, Port::Right)];
        let mut addr = PlacedInst::new(s3, Opcode::Add);
        addr.imm = Some(Value::from_u64(300));
        addr.targets = vec![Target::port(s2, Port::Left)];
        let st = PlacedInst::new(s2, Opcode::Store(space));
        DataflowBlock::new("ldst", vec![it, ld, addr, st], vec![])
    }

    #[test]
    fn loads_read_staged_memory() {
        let mut m = machine(MechanismSet::simd());
        for i in 0..8u64 {
            m.memory_mut().write(i, Value::from_u64(i * 11));
        }
        m.stage_smc(0..8).unwrap();
        let s = m.run_dataflow(&load_store_block(MemSpace::Smc), 8).unwrap();
        for i in 0..8u64 {
            assert_eq!(m.memory().read(300 + i).as_u64(), i * 11);
        }
        assert_eq!(s.loads, 8);
        assert!(s.smc_accesses >= 8);
    }

    #[test]
    fn l1_loads_work_on_baseline_with_frames() {
        let mut m = machine(MechanismSet::baseline());
        for i in 0..16u64 {
            m.memory_mut().write(i, Value::from_u64(1000 + i));
        }
        let s = m.run_dataflow(&load_store_block(MemSpace::L1), 16).unwrap();
        for i in 0..16u64 {
            assert_eq!(m.memory().read(300 + i).as_u64(), 1000 + i, "iteration {i}");
        }
        assert!(s.l1_accesses >= 16);
    }

    #[test]
    fn smc_ops_rejected_without_mechanism() {
        let mut m = machine(MechanismSet::baseline());
        assert!(matches!(
            m.run_dataflow(&load_store_block(MemSpace::Smc), 1),
            Err(DlpError::Unsupported { .. })
        ));
    }

    #[test]
    fn lmw_fans_words_across_row() {
        // movi(addr 0) -> lmw 4 words -> 4 adders, summed pairwise to reg0.
        let sa = slot(3, 0, 0);
        let sl = slot(3, 0, 1);
        let t0 = slot(3, 1, 0);
        let t1 = slot(3, 2, 0);
        let t2 = slot(3, 1, 1);
        let t3 = slot(3, 2, 1);
        let mut addr = PlacedInst::new(sa, Opcode::MovI);
        addr.imm = Some(Value::from_u64(0));
        addr.targets = vec![Target::port(sl, Port::Left)];
        let mut lmw = PlacedInst::new(sl, Opcode::Lmw);
        lmw.imm = Some(Value::from_u64(4));
        lmw.targets = vec![
            Target::port(t0, Port::Left),
            Target::port(t0, Port::Right),
            Target::port(t1, Port::Left),
            Target::port(t1, Port::Right),
        ];
        let mut a0 = PlacedInst::new(t0, Opcode::Add);
        a0.targets = vec![Target::port(t2, Port::Left)];
        let mut a1 = PlacedInst::new(t1, Opcode::Add);
        a1.targets = vec![Target::port(t2, Port::Right)];
        let mut a2 = PlacedInst::new(t2, Opcode::Add);
        a2.targets = vec![Target::port(t3, Port::Left)];
        let mut fin = PlacedInst::new(t3, Opcode::Mov);
        fin.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("lmw", vec![addr, lmw, a0, a1, a2, fin], vec![]);

        let mut m = machine(MechanismSet::simd());
        for i in 0..4u64 {
            m.memory_mut().write(i, Value::from_u64(i + 1)); // 1+2+3+4 = 10
        }
        m.stage_smc(0..8).unwrap();
        let s = m.run_dataflow(&blk, 1).unwrap();
        assert_eq!(m.reg(0).as_u64(), 10);
        assert_eq!(s.lmw_words, 4);
        assert_eq!(s.loads, 1, "one LMW counts as one load instruction");
    }

    #[test]
    fn lut_reads_l0_table() {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let mut it = PlacedInst::new(s0, Opcode::Iter);
        it.targets = vec![Target::port(s1, Port::Left)];
        let mut lut = PlacedInst::new(s1, Opcode::Lut);
        lut.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("lut", vec![it, lut], vec![]);

        let mut m = machine(MechanismSet::simd_operand_l0());
        let table: Vec<Value> = (0..16).map(|i| Value::from_u64(i * i)).collect();
        m.load_l0_table(&table).unwrap();
        let s = m.run_dataflow(&blk, 4).unwrap();
        assert_eq!(m.reg(0).as_u64(), 9); // 3*3
        assert_eq!(s.l0_accesses, 4);
    }

    #[test]
    fn lut_rejected_without_l0() {
        let s0 = slot(0, 0, 0);
        let s1 = slot(0, 1, 0);
        let mut it = PlacedInst::new(s0, Opcode::Iter);
        it.targets = vec![Target::port(s1, Port::Left)];
        let mut lut = PlacedInst::new(s1, Opcode::Lut);
        lut.targets = vec![Target::Reg(0)];
        let blk = DataflowBlock::new("lut", vec![it, lut], vec![]);
        let mut m = machine(MechanismSet::simd());
        assert!(matches!(m.run_dataflow(&blk, 1), Err(DlpError::Unsupported { .. })));
    }

    #[test]
    fn mimd_machine_rejects_dataflow() {
        let mut m = machine(MechanismSet::mimd());
        assert!(matches!(
            m.run_dataflow(&tiny_block(), 1),
            Err(DlpError::Unsupported { .. })
        ));
    }

    #[test]
    fn sel_merges_in_dataflow() {
        // p = iter < 2 ; sel(p, 111, 222) -> store at 400+iter.
        let si = slot(0, 0, 0);
        let sc = slot(0, 1, 0);
        let sa = slot(1, 0, 0);
        let sb = slot(1, 1, 0);
        let ss = slot(1, 2, 0);
        let sd = slot(1, 3, 0);
        let st = slot(1, 4, 0);
        let mut it = PlacedInst::new(si, Opcode::Iter);
        it.targets = vec![Target::port(sc, Port::Left), Target::port(sd, Port::Left)];
        let mut cmp = PlacedInst::new(sc, Opcode::Tltu);
        cmp.imm = Some(Value::from_u64(2));
        cmp.targets = vec![Target::port(ss, Port::Pred)];
        let mut va = PlacedInst::new(sa, Opcode::MovI);
        va.imm = Some(Value::from_u64(111));
        va.targets = vec![Target::port(ss, Port::Left)];
        let mut vb = PlacedInst::new(sb, Opcode::MovI);
        vb.imm = Some(Value::from_u64(222));
        vb.targets = vec![Target::port(ss, Port::Right)];
        let mut sel = PlacedInst::new(ss, Opcode::Sel);
        sel.targets = vec![Target::port(st, Port::Right)];
        let mut addr = PlacedInst::new(sd, Opcode::Add);
        addr.imm = Some(Value::from_u64(400));
        addr.targets = vec![Target::port(st, Port::Left)];
        let stv = PlacedInst::new(st, Opcode::Store(MemSpace::L1));
        let blk = DataflowBlock::new("sel", vec![it, cmp, va, vb, sel, addr, stv], vec![]);

        let mut m = machine(MechanismSet::simd());
        m.run_dataflow(&blk, 4).unwrap();
        assert_eq!(m.memory().read(400).as_u64(), 111);
        assert_eq!(m.memory().read(401).as_u64(), 111);
        assert_eq!(m.memory().read(402).as_u64(), 222);
        assert_eq!(m.memory().read(403).as_u64(), 222);
    }
}
