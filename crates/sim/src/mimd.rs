//! The MIMD engine: local program counters + L0 instruction stores (§4.3).
//!
//! Each node executes its own [`MimdProgram`] out of a private L0
//! instruction store under a local PC, with an in-order
//! fetch/register-read/execute pipeline over the operand-storage buffers.
//! Loads and stores are routed from the node across the mesh to the memory
//! interface — the per-element routing cost that makes the **M**
//! configuration lose to **S-O-D** on streaming kernels (§5.3) — and
//! `Send`/`Recv` give fine-grain ALU-ALU synchronization.

use std::collections::VecDeque;

use dlp_common::{Coord, DlpError, SimStats, Tick, Value};
use trips_isa::{
    MemSpace, MimdInst, MimdOp, MimdProgram, OpClass, OpRole, Opcode, REG_NODE_COUNT, REG_NODE_ID,
    REG_RECORDS,
};
use trips_noc::Endpoint;

use crate::equeue::CalendarQueue;
use crate::{EngineArena, Machine};

/// Per-node execution state.
#[derive(Clone)]
pub(crate) struct NodeState {
    pub(crate) regs: [Value; 32],
    pub(crate) pc: usize,
    pub(crate) halted: bool,
    /// Set while blocked on a `Recv` whose message has not arrived.
    pub(crate) blocked_recv: Option<usize /* src node rank */>,
}

impl NodeState {
    pub(crate) fn new() -> Self {
        NodeState { regs: [Value::ZERO; 32], pc: 0, halted: false, blocked_recv: None }
    }
}

/// In-flight messages `src rank -> dst rank`: FIFO of (arrival tick, value).
///
/// A flat table indexed `src * n_ranks + dst`, so every `Send`/`Recv` is a
/// dense array access instead of a hash lookup.
#[derive(Default)]
pub(crate) struct Channels {
    queues: Vec<VecDeque<(Tick, Value)>>,
    n_ranks: usize,
}

impl Channels {
    /// Size the table for `n_ranks` and empty every channel, retaining
    /// each queue's allocation from prior runs.
    pub(crate) fn reset(&mut self, n_ranks: usize) {
        for q in &mut self.queues {
            q.clear();
        }
        self.queues.resize_with(n_ranks * n_ranks, VecDeque::new);
        self.n_ranks = n_ranks;
    }

    pub(crate) fn get_mut(&mut self, src: usize, dst: usize) -> &mut VecDeque<(Tick, Value)> {
        &mut self.queues[src * self.n_ranks + dst]
    }
}

/// The ready queue: nodes keyed by (tick they may proceed, rank). The
/// calendar queue's internal sequence number only refines ties *after*
/// `(tick, rank)` — and entries carrying the same `(tick, rank)` are
/// value-identical — so the pop order is exactly the old binary heap's
/// `(tick, rank)` order, independent of push order.
type ReadyQueue = CalendarQueue<usize, ()>;

/// Log2 bucket width (in ticks) for the MIMD ready queues — scalar and
/// batched. One tick per bucket: instrumented blowfish/M runs show the
/// MIMD schedule is *dense* in tick space (average cursor walk 0.01
/// slots/pop, overflow heap never touched), so wider buckets buy
/// nothing and cost ~20% throughput — every dense push then pays the
/// in-bucket sorted-insert scan past later-tick events sharing the
/// bucket (measurements in `EXPERIMENTS.md`). The knob stays because
/// pop order is identical for any shift (the
/// `bucket_shift_is_unobservable` property test), making it safe to
/// re-tune if a genuinely sparse workload appears.
pub(crate) const MIMD_BUCKET_SHIFT: u32 = 0;

/// Recyclable storage for one MIMD run, owned by an
/// [`EngineArena`](crate::EngineArena). Rebuilt per run; the allocations
/// (node states, channel table, ready-queue buckets, rank/coord tables)
/// carry over.
pub(crate) struct MimdScratch {
    queue: ReadyQueue,
    channels: Channels,
    nodes: Vec<NodeState>,
    /// Participating node indices in rank order.
    ranks: Vec<usize>,
    coords: Vec<Coord>,
    /// Where `Send dst` routes to, precomputed per destination rank.
    send_coords: Vec<Coord>,
}

impl Default for MimdScratch {
    fn default() -> Self {
        MimdScratch {
            queue: ReadyQueue::with_window_shift(crate::equeue::DEFAULT_WINDOW, MIMD_BUCKET_SHIFT),
            channels: Channels::default(),
            nodes: Vec::new(),
            ranks: Vec::new(),
            coords: Vec::new(),
            send_coords: Vec::new(),
        }
    }
}

/// Outcome of executing one instruction.
pub(crate) enum Step {
    /// Node continues; next instruction may start at this tick.
    Continue(Tick),
    /// Node executed `halt`.
    Halted,
    /// Node is blocked on a `Recv`; it will be re-queued by a send/arrival.
    BlockedRecv,
}

impl Machine {
    /// Run the array in MIMD mode: node `i` (row-major) executes
    /// `programs[i]`; nodes beyond the slice or with empty programs idle.
    ///
    /// Register conventions are preloaded per participating node before
    /// start: `r30` = node rank, `r31` = participating node count, `r29` =
    /// `records`. `Send`/`Recv` address peers by **rank** (position among
    /// participating nodes).
    ///
    /// # Example
    ///
    /// ```
    /// use trips_sim::{Machine, MechanismSet};
    /// use trips_isa::{MimdAsm, MemSpace, Opcode, REG_NODE_ID};
    /// use dlp_common::{GridShape, TimingParams, Value};
    ///
    /// // Every node stores (100 + rank) at word rank.
    /// let mut asm = MimdAsm::new();
    /// asm.alui(Opcode::Add, 1, REG_NODE_ID, 100);
    /// asm.st(MemSpace::Smc, REG_NODE_ID, 0, 1);
    /// asm.halt();
    /// let prog = asm.assemble()?;
    ///
    /// let mut m = Machine::new(GridShape::new(4, 4), TimingParams::default(),
    ///                          MechanismSet::mimd());
    /// m.stage_smc(0..64)?;
    /// let stats = m.run_mimd(&vec![prog; 16], 16)?;
    /// assert_eq!(m.memory().read(7).as_u64(), 107);
    /// assert!(stats.cycles() > 0);
    /// # Ok::<(), dlp_common::DlpError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// * [`DlpError::Unsupported`] — machine lacks local PCs, or a program
    ///   uses the L0 data store / SMC without those mechanisms.
    /// * [`DlpError::CapacityExceeded`] — a program exceeds the L0
    ///   instruction store.
    /// * [`DlpError::Watchdog`] — runaway execution (livelock).
    /// * [`DlpError::MalformedProgram`] — deadlock (a `Recv` that can never
    ///   be satisfied) or a node that never halts.
    pub fn run_mimd(
        &mut self,
        programs: &[MimdProgram],
        records: u64,
    ) -> Result<SimStats, DlpError> {
        let mut arena = EngineArena::new();
        self.run_mimd_in(programs, records, &mut arena)
    }

    /// As [`Machine::run_mimd`], reusing `arena`'s scratch storage —
    /// bit-identical statistics, but a caller running many programs (a
    /// sweep worker) allocates nothing once the arena has warmed up.
    ///
    /// # Errors
    ///
    /// As [`Machine::run_mimd`].
    pub fn run_mimd_in(
        &mut self,
        programs: &[MimdProgram],
        records: u64,
        arena: &mut EngineArena,
    ) -> Result<SimStats, DlpError> {
        let n_active = programs.iter().filter(|p| !p.is_empty()).count() as u64;
        self.run_mimd_with_conventions_in(
            programs,
            &|rank| (rank as u64, n_active, records),
            arena,
        )
    }

    /// [`Machine::run_mimd`] with caller-supplied register conventions:
    /// `conventions(global_rank)` returns `(r30, r31, r29)` for that node —
    /// the hook partitioned execution uses to give each partition local
    /// ranks and its own record count.
    ///
    /// # Errors
    ///
    /// As [`Machine::run_mimd`].
    pub fn run_mimd_with_conventions(
        &mut self,
        programs: &[MimdProgram],
        conventions: &dyn Fn(usize) -> (u64, u64, u64),
    ) -> Result<SimStats, DlpError> {
        let mut arena = EngineArena::new();
        self.run_mimd_with_conventions_in(programs, conventions, &mut arena)
    }

    /// As [`Machine::run_mimd_with_conventions`], reusing `arena`'s
    /// scratch storage.
    ///
    /// # Errors
    ///
    /// As [`Machine::run_mimd`].
    pub fn run_mimd_with_conventions_in(
        &mut self,
        programs: &[MimdProgram],
        conventions: &dyn Fn(usize) -> (u64, u64, u64),
        arena: &mut EngineArena,
    ) -> Result<SimStats, DlpError> {
        if !self.mechanisms().local_pc {
            return Err(DlpError::Unsupported {
                what: "MIMD execution without local program counters".into(),
            });
        }
        let cap = self.params().core.l0_inst_capacity;
        for p in programs {
            if p.len() > cap {
                return Err(DlpError::CapacityExceeded {
                    resource: "L0 instruction-store entries",
                    needed: p.len(),
                    available: cap,
                });
            }
            for inst in p.insts() {
                match inst.op {
                    MimdOp::Lut if !self.mechanisms().l0_data_store => {
                        return Err(DlpError::Unsupported {
                            what: "lut instruction without the L0 data store".into(),
                        })
                    }
                    MimdOp::Ld(MemSpace::Smc) | MimdOp::St(MemSpace::Smc)
                        if !self.mechanisms().smc =>
                    {
                        return Err(DlpError::Unsupported {
                            what: "SMC memory access without the SMC mechanism".into(),
                        })
                    }
                    _ => {}
                }
            }
        }

        let mut stats = self.begin_run();
        let n = programs.len().min(self.grid().nodes());
        let s = &mut arena.mimd;
        // Participating nodes in rank order.
        s.ranks.clear();
        s.ranks.extend((0..n).filter(|&i| !programs[i].is_empty()));
        if s.ranks.is_empty() {
            return Ok(stats);
        }
        let n_ranks = s.ranks.len();

        // Setup block: broadcast programs into the L0 instruction stores.
        let longest = programs.iter().map(MimdProgram::len).max().unwrap_or(0);
        let start = stats.ticks + self.fetch_ticks(longest);
        stats.blocks_fetched = 1;

        s.nodes.clear();
        s.nodes.resize_with(n_ranks, NodeState::new);
        for (rank, st) in s.nodes.iter_mut().enumerate() {
            let (node_id, node_count, recs) = conventions(rank);
            st.regs[REG_NODE_ID as usize] = Value::from_u64(node_id);
            st.regs[REG_NODE_COUNT as usize] = Value::from_u64(node_count);
            st.regs[REG_RECORDS as usize] = Value::from_u64(recs);
            stats.iterations = stats.iterations.max(recs);
        }
        s.coords.clear();
        for &i in &s.ranks {
            s.coords.push(self.grid().coord(i));
        }
        s.send_coords.clear();
        for d in 0..n_ranks {
            s.send_coords.push(self.grid().coord_of_rank(d, n_ranks));
        }

        s.channels.reset(n_ranks);
        // A failed previous run may have left entries queued.
        s.queue.clear();
        for rank in 0..n_ranks {
            s.queue.push(start, rank, ());
        }
        let mut last_tick = start;
        let mut max_drain = start;
        let mut steps: u64 = 0;
        // The step budget follows from the watchdog: with every
        // instruction advancing its node's tick by at least one cycle, a
        // rank can be popped at most once per distinct tick in
        // `0..=watchdog_ticks`. Exceeding it means a zero-latency livelock
        // the tick check alone would never catch.
        let step_budget =
            (n_ranks as u64).saturating_mul(self.watchdog_ticks.saturating_add(1));

        while let Some((t, rank, ())) = s.queue.pop() {
            if t > self.watchdog_ticks || steps > step_budget {
                return Err(DlpError::Watchdog {
                    ticks: t,
                    context: format!(
                        "mimd rank {rank} at pc {} ({steps} steps, budget {step_budget} = \
                         {n_ranks} ranks x (watchdog {} + 1))",
                        s.nodes[rank].pc,
                        self.watchdog_ticks
                    ),
                });
            }
            if let Some(fatal) = self.fault.fatal() {
                return Err(fatal.to_error());
            }
            steps += 1;
            if s.nodes[rank].halted {
                continue;
            }
            let pc = s.nodes[rank].pc;
            let prog = &programs[s.ranks[rank]];
            if pc >= prog.len() {
                return Err(DlpError::MalformedProgram {
                    detail: format!("mimd node rank {rank} ran off the end of its program"),
                });
            }
            let inst = prog.insts()[pc];
            stats.mimd_fetches += 1;
            last_tick = last_tick.max(t);

            let step = self.step_inst(
                rank,
                s.coords[rank],
                t,
                inst,
                &mut s.nodes,
                &mut s.channels,
                &mut s.queue,
                &s.send_coords,
                &mut stats,
                &mut max_drain,
            );
            match step {
                Step::Continue(next_t) => {
                    last_tick = last_tick.max(next_t);
                    s.queue.push(next_t, rank, ());
                }
                Step::Halted => {}
                Step::BlockedRecv => {}
            }
        }

        // A fault escalated by the last step has no successor pop to
        // observe it — catch it before declaring the run complete.
        if let Some(fatal) = self.fault.fatal() {
            return Err(fatal.to_error());
        }

        if let Some(rank) = s.nodes.iter().position(|st| !st.halted) {
            return Err(DlpError::MalformedProgram {
                detail: format!("mimd deadlock: node rank {rank} never halted"),
            });
        }

        stats.ticks = last_tick.max(max_drain);
        let net = self.router.stats();
        stats.net_msgs = net.msgs;
        stats.net_hops = net.hops;
        stats.record_faults(self.fault.take_stats());
        Ok(stats)
    }

    /// Execute one instruction for node `rank` at tick `t`, mutating the
    /// node state (registers, pc) and returning when the node may proceed.
    ///
    /// `Send` wakes its destination directly (pushing onto `queue`) when
    /// that node is blocked on the matching channel; a blocked node's
    /// channel is always empty, so the arriving message is necessarily the
    /// queue front the old post-step scan would have found.
    #[allow(clippy::too_many_arguments)]
    fn step_inst(
        &mut self,
        rank: usize,
        coord: Coord,
        t: Tick,
        inst: MimdInst,
        nodes: &mut [NodeState],
        channels: &mut Channels,
        queue: &mut ReadyQueue,
        send_coords: &[Coord],
        stats: &mut SimStats,
        max_drain: &mut Tick,
    ) -> Step {
        let alu = self.params().ops.int_alu;
        let ra = nodes[rank].regs[inst.ra as usize];
        let rb = nodes[rank].regs[inst.rb as usize];
        let rd_old = nodes[rank].regs[inst.rd as usize];
        let imm = inst.imm;
        let useful = inst.role == OpRole::Useful;

        macro_rules! count {
            ($useful:expr) => {
                if $useful {
                    stats.useful_ops += 1;
                } else {
                    stats.overhead_ops += 1;
                }
            };
        }

        match inst.op {
            MimdOp::Alu(op) | MimdOp::AluI(op) => {
                let rhs =
                    if matches!(inst.op, MimdOp::AluI(_)) { Value::from_i64(imm) } else { rb };
                // `Sel rd, ra, rb`: rd = ra(predicate) ? rb : rd_old.
                let v = if matches!(op, Opcode::Sel) {
                    trips_isa::exec::eval(Opcode::Sel, rhs, rd_old, ra)
                } else {
                    let (_, needs_r, _) = op.ports();
                    trips_isa::exec::eval(op, ra, if needs_r { rhs } else { Value::ZERO }, Value::ZERO)
                };
                nodes[rank].regs[inst.rd as usize] = v;
                nodes[rank].pc += 1;
                count!(useful && op.class() != OpClass::Mov);
                Step::Continue(t + op.latency(&self.params().ops))
            }
            MimdOp::Li => {
                nodes[rank].regs[inst.rd as usize] = Value::from_u64(imm as u64);
                nodes[rank].pc += 1;
                count!(false);
                Step::Continue(t + self.params().ops.mov)
            }
            MimdOp::Ld(space) => {
                let addr = ra.as_u64().wrapping_add(imm as u64);
                stats.loads += 1;
                let row = coord.row;
                let req = self.router.send_faulty(
                    Endpoint::Node(coord),
                    Endpoint::MemPort(row),
                    t + alu,
                    &mut self.fault,
                );
                let served = match space {
                    MemSpace::Smc => {
                        stats.smc_accesses += 1;
                        self.smc[row as usize].access_faulty(addr, req, &mut self.fault)
                    }
                    MemSpace::L1 => {
                        stats.l1_accesses += 1;
                        let (t2, hit) = self.l1[row as usize].access_faulty(addr, req, &mut self.fault);
                        if !hit {
                            stats.l1_misses += 1;
                        }
                        t2
                    }
                };
                let back = self.router.send_faulty(
                    Endpoint::MemPort(row),
                    Endpoint::Node(coord),
                    served,
                    &mut self.fault,
                );
                // The loaded value lands in the node's operand storage; a
                // parity flip there is re-latched from the network buffer.
                let back = self.fault.operand_write(back);
                stats.mem_stall_node_cycles += (back - t) / 2;
                nodes[rank].regs[inst.rd as usize] = self.mem.read(addr);
                nodes[rank].pc += 1;
                Step::Continue(back)
            }
            MimdOp::St(space) => {
                let addr = ra.as_u64().wrapping_add(imm as u64);
                stats.stores += 1;
                self.mem.write(addr, rb);
                let row = coord.row;
                let req = self.router.send_faulty(
                    Endpoint::Node(coord),
                    Endpoint::MemPort(row),
                    t + alu,
                    &mut self.fault,
                );
                let drained = match space {
                    MemSpace::Smc => {
                        let t2 = self.stb[row as usize].push_faulty(addr, req, &mut self.fault);
                        self.smc[row as usize].store_faulty(addr, t2, &mut self.fault)
                    }
                    MemSpace::L1 => {
                        stats.l1_accesses += 1;
                        let (t2, hit) = self.l1[row as usize].access_faulty(addr, req, &mut self.fault);
                        if !hit {
                            stats.l1_misses += 1;
                        }
                        t2
                    }
                };
                *max_drain = (*max_drain).max(drained);
                nodes[rank].pc += 1;
                // Stores retire into the buffer; the node moves on.
                Step::Continue(t + alu)
            }
            MimdOp::Lut => {
                let idx = ra.as_u64().wrapping_add(imm as u64);
                stats.l0_accesses += 1;
                nodes[rank].regs[inst.rd as usize] =
                    self.l0_data.get(idx as usize).copied().unwrap_or(Value::ZERO);
                nodes[rank].pc += 1;
                Step::Continue(t + self.params().mem.l0_latency)
            }
            MimdOp::Jmp => {
                nodes[rank].pc = imm as usize;
                count!(false);
                Step::Continue(t + alu)
            }
            MimdOp::Bez | MimdOp::Bnz => {
                let taken = if matches!(inst.op, MimdOp::Bez) { !ra.is_true() } else { ra.is_true() };
                nodes[rank].pc = if taken { imm as usize } else { nodes[rank].pc + 1 };
                count!(false);
                Step::Continue(t + alu)
            }
            MimdOp::Send => {
                let dst = (imm as usize).min(nodes.len().saturating_sub(1));
                let arrive = self.router.send_faulty(
                    Endpoint::Node(coord),
                    Endpoint::Node(send_coords[dst]),
                    t + alu,
                    &mut self.fault,
                );
                // The message parks in the receiver's operand buffer; a
                // flipped entry is re-latched before it becomes visible.
                let arrive = self.fault.operand_write(arrive);
                channels.get_mut(rank, dst).push_back((arrive, ra));
                if nodes[dst].blocked_recv == Some(rank) {
                    // The receiver blocked on an empty channel; this message
                    // is the front, so it proceeds at the arrival tick.
                    nodes[dst].blocked_recv = None;
                    queue.push(arrive, dst, ());
                }
                nodes[rank].pc += 1;
                count!(false);
                Step::Continue(t + alu)
            }
            MimdOp::Recv => {
                let src = imm as usize;
                if src >= nodes.len() {
                    // No such peer: block forever (reported as a deadlock).
                    nodes[rank].blocked_recv = Some(src);
                    return Step::BlockedRecv;
                }
                let q = channels.get_mut(src, rank);
                match q.front().copied() {
                    Some((arrive, v)) if arrive <= t => {
                        q.pop_front();
                        let _ = arrive;
                        nodes[rank].regs[inst.rd as usize] = v;
                        nodes[rank].pc += 1;
                        count!(false);
                        Step::Continue(t + alu)
                    }
                    Some((arrive, _)) => {
                        // In flight but not yet arrived: retry at arrival.
                        queue.push(arrive, rank, ());
                        Step::BlockedRecv
                    }
                    None => {
                        nodes[rank].blocked_recv = Some(src);
                        Step::BlockedRecv
                    }
                }
            }
            MimdOp::Halt => {
                nodes[rank].halted = true;
                Step::Halted
            }
        }
    }
}

pub(crate) trait RankCoord {
    fn coord_of_rank(&self, rank: usize, _n_ranks: usize) -> Coord;
}

impl RankCoord for dlp_common::GridShape {
    /// Ranks are assigned in row-major grid order over participating nodes;
    /// with every node participating (the common case) rank == linear index.
    fn coord_of_rank(&self, rank: usize, _n_ranks: usize) -> Coord {
        self.coord(rank.min(self.nodes() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_common::{GridShape, TimingParams};
    use trips_isa::MimdAsm;

    use crate::MechanismSet;

    fn machine(mech: MechanismSet) -> Machine {
        Machine::new(GridShape::new(8, 8), TimingParams::default(), mech)
    }

    fn single(asm: MimdAsm) -> Vec<MimdProgram> {
        vec![asm.assemble().unwrap()]
    }

    #[test]
    fn requires_local_pc() {
        let mut m = machine(MechanismSet::simd());
        let mut asm = MimdAsm::new();
        asm.halt();
        assert!(matches!(
            m.run_mimd(&single(asm), 1),
            Err(DlpError::Unsupported { .. })
        ));
    }

    #[test]
    fn computes_a_loop() {
        // Sum 1..=10 into r1, store at word 100.
        let mut asm = MimdAsm::new();
        asm.li(1, 0);
        asm.li(2, 10);
        asm.label("top");
        asm.alu(Opcode::Add, 1, 1, 2);
        asm.alui(Opcode::Sub, 2, 2, 1);
        asm.bnz(2, "top");
        asm.li(3, 100);
        asm.st(MemSpace::Smc, 3, 0, 1);
        asm.halt();
        let mut m = machine(MechanismSet::mimd());
        m.stage_smc(0..1024).unwrap();
        let stats = m.run_mimd(&single(asm), 1).unwrap();
        assert_eq!(m.memory().read(100).as_u64(), 55);
        assert_eq!(stats.stores, 1);
        assert!(stats.mimd_fetches > 20, "loop iterations fetch repeatedly");
    }

    #[test]
    fn node_conventions_are_preloaded() {
        // Each node stores its rank at word (200 + rank).
        let mut asm = MimdAsm::new();
        asm.li(1, 200);
        asm.alu(Opcode::Add, 1, 1, REG_NODE_ID);
        asm.st(MemSpace::Smc, 1, 0, REG_NODE_ID);
        asm.halt();
        let prog = asm.assemble().unwrap();
        let progs = vec![prog; 4];
        let mut m = machine(MechanismSet::mimd());
        m.stage_smc(0..1024).unwrap();
        m.run_mimd(&progs, 4).unwrap();
        for r in 0..4u64 {
            assert_eq!(m.memory().read(200 + r).as_u64(), r, "rank {r}");
        }
    }

    #[test]
    fn send_recv_synchronizes() {
        // Node 0 sends 42 to node 1; node 1 stores what it receives.
        let mut a0 = MimdAsm::new();
        a0.li(1, 42);
        a0.send(1, 1);
        a0.halt();
        let mut a1 = MimdAsm::new();
        a1.recv(2, 0);
        a1.li(3, 300);
        a1.st(MemSpace::Smc, 3, 0, 2);
        a1.halt();
        let progs = vec![a0.assemble().unwrap(), a1.assemble().unwrap()];
        let mut m = machine(MechanismSet::mimd());
        m.stage_smc(0..1024).unwrap();
        m.run_mimd(&progs, 1).unwrap();
        assert_eq!(m.memory().read(300).as_u64(), 42);
    }

    #[test]
    fn arena_reuse_is_bit_identical() {
        // Heterogeneous runs threaded through one arena must match
        // fresh-arena runs exactly.
        let sum_prog = || {
            let mut asm = MimdAsm::new();
            asm.li(1, 0);
            asm.li(2, 10);
            asm.label("top");
            asm.alu(Opcode::Add, 1, 1, 2);
            asm.alui(Opcode::Sub, 2, 2, 1);
            asm.bnz(2, "top");
            asm.li(3, 100);
            asm.st(MemSpace::Smc, 3, 0, 1);
            asm.halt();
            asm.assemble().unwrap()
        };
        let rank_prog = || {
            let mut asm = MimdAsm::new();
            asm.li(1, 200);
            asm.alu(Opcode::Add, 1, 1, REG_NODE_ID);
            asm.st(MemSpace::Smc, 1, 0, REG_NODE_ID);
            asm.halt();
            asm.assemble().unwrap()
        };
        let mut arena = EngineArena::new();

        let mut m = machine(MechanismSet::mimd());
        m.stage_smc(0..1024).unwrap();
        let fresh = m.run_mimd(&[sum_prog()], 1).unwrap();
        let mut m = machine(MechanismSet::mimd());
        m.stage_smc(0..1024).unwrap();
        let reused = m.run_mimd_in(&[sum_prog()], 1, &mut arena).unwrap();
        assert_eq!(fresh, reused, "single-rank: arena == fresh");

        let mut m = machine(MechanismSet::mimd());
        m.stage_smc(0..1024).unwrap();
        let fresh4 = m.run_mimd(&vec![rank_prog(); 4], 4).unwrap();
        let mut m = machine(MechanismSet::mimd());
        m.stage_smc(0..1024).unwrap();
        let reused4 = m.run_mimd_in(&vec![rank_prog(); 4], 4, &mut arena).unwrap();
        assert_eq!(fresh4, reused4, "4-rank after 1-rank: arena == fresh");

        // Shrinking back down must not see rank 1..3's stale state.
        let mut m = machine(MechanismSet::mimd());
        m.stage_smc(0..1024).unwrap();
        let again = m.run_mimd_in(&[sum_prog()], 1, &mut arena).unwrap();
        assert_eq!(fresh, again, "arena reused across rank counts");
    }

    #[test]
    fn unmatched_recv_deadlocks_cleanly() {
        let mut asm = MimdAsm::new();
        asm.recv(1, 0); // nobody ever sends
        asm.halt();
        let mut m = machine(MechanismSet::mimd());
        assert!(matches!(
            m.run_mimd(&single(asm), 1),
            Err(DlpError::MalformedProgram { .. })
        ));
    }

    #[test]
    fn lut_requires_l0_mechanism() {
        let mut asm = MimdAsm::new();
        asm.lut(1, 0, 0);
        asm.halt();
        let mut m = machine(MechanismSet::mimd());
        assert!(m.run_mimd(&single(asm), 1).is_err());

        let mut asm = MimdAsm::new();
        asm.li(1, 3);
        asm.lut(2, 1, 0);
        asm.li(3, 400);
        asm.st(MemSpace::Smc, 3, 0, 2);
        asm.halt();
        let mut m = machine(MechanismSet::mimd_l0());
        m.load_l0_table(&(0..8).map(|i| Value::from_u64(i * 7)).collect::<Vec<_>>()).unwrap();
        m.stage_smc(0..1024).unwrap();
        let stats = m.run_mimd(&single(asm), 1).unwrap();
        assert_eq!(m.memory().read(400).as_u64(), 21);
        assert_eq!(stats.l0_accesses, 1);
    }

    #[test]
    fn watchdog_catches_livelock() {
        // `jmp 0` spins forever; a lowered watchdog turns that into a
        // clean error instead of an unbounded simulation. The error
        // context reports the watchdog-derived step budget.
        let mut asm = MimdAsm::new();
        asm.label("spin");
        asm.jmp("spin");
        asm.halt();
        let mut m = machine(MechanismSet::mimd());
        m.set_watchdog(10_000);
        match m.run_mimd(&single(asm), 1) {
            Err(DlpError::Watchdog { context, .. }) => {
                assert!(
                    context.contains("budget 10001"),
                    "context should carry the derived step budget (1 rank x (10000 + 1)): {context}"
                );
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
    }

    #[test]
    fn oversized_program_rejected() {
        let mut asm = MimdAsm::new();
        for _ in 0..1000 {
            asm.li(1, 0);
        }
        asm.halt();
        let mut m = machine(MechanismSet::mimd());
        assert!(matches!(
            m.run_mimd(&single(asm), 1),
            Err(DlpError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn variable_work_finishes_at_slowest_node() {
        // Node 0 loops 1 time; node 1 loops 100 times.
        let make = |n: i64| {
            let mut asm = MimdAsm::new();
            asm.li(1, n);
            asm.label("top");
            asm.alui(Opcode::Sub, 1, 1, 1);
            asm.bnz(1, "top");
            asm.halt();
            asm.assemble().unwrap()
        };
        let mut m = machine(MechanismSet::mimd());
        let fast = m.run_mimd(&[make(1)], 1).unwrap();
        let mut m2 = machine(MechanismSet::mimd());
        let slow = m2.run_mimd(&[make(1), make(100)], 1).unwrap();
        assert!(slow.ticks > fast.ticks);
    }
}
