//! Reusable engine scratch storage for zero-allocation steady state.

/// Recyclable storage for both cycle-level engines.
///
/// Every vector, calendar-queue bucket, and channel table an engine
/// needs per run lives here and retains its capacity between runs, so a
/// worker that threads one arena through many cells (the sweep engine's
/// phase 2, the hot-path bench loop) stops allocating after its first
/// cell: frames, throttle tables, resolved-target tables, MIMD channels
/// and node state, and the event queue's bucket storage are all reused.
///
/// Pass one to [`Machine::run_dataflow_in`](crate::Machine::run_dataflow_in)
/// or [`Machine::run_mimd_in`](crate::Machine::run_mimd_in). The
/// allocation-free variants are observationally pure: statistics are
/// bit-identical to the arena-free entry points, which simply construct
/// a fresh arena per call. An arena left dirty by a failed run (watchdog,
/// malformed program) is fully reset at the start of the next run.
#[derive(Default)]
pub struct EngineArena {
    pub(crate) dataflow: crate::dataflow::DataflowScratch,
    pub(crate) mimd: crate::mimd::MimdScratch,
    pub(crate) batch_dataflow: crate::batch::BatchDataflowScratch,
    pub(crate) batch_mimd: crate::batch::BatchMimdScratch,
}

impl EngineArena {
    /// An empty arena. Storage grows on first use and is retained after.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Promise that `block` already passed
    /// [`DataflowBlock::validate`](trips_isa::DataflowBlock::validate)
    /// for `grid` with `slots_per_node` reservation stations, so the
    /// next [`run_dataflow_in`](crate::Machine::run_dataflow_in) against
    /// this exact block (same address and length) skips re-validating.
    ///
    /// Validation hashes every slot in the block — O(block) work that
    /// rivals the simulation itself for heavily unrolled blocks — and a
    /// scheduler lowering already validates as its final step, so
    /// callers running prepared programs (the sweep engine, the hot-path
    /// harness) use this to avoid paying it again per cell. Marking a
    /// block that was *not* validated trades the structured
    /// `MalformedProgram` error for a later panic or wrong simulation;
    /// only mark blocks a scheduler produced.
    pub fn mark_dataflow_block_validated(
        &mut self,
        block: &trips_isa::DataflowBlock,
        grid: dlp_common::GridShape,
        slots_per_node: usize,
    ) {
        let fp = (std::ptr::from_ref(block) as usize, block.len(), grid, slots_per_node);
        self.dataflow.validated = Some(fp);
        self.batch_dataflow.tables.validated = Some(fp);
    }
}
