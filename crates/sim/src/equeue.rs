//! Deterministic calendar (bucket) event queue shared by both engines.
//!
//! Both cycle-level engines previously scheduled events through a
//! `BinaryHeap`, paying O(log n) on every push and pop on the single
//! hottest edge of the simulator. [`CalendarQueue`] replaces that with a
//! classic calendar queue: a ring of buckets covering a sliding window
//! of ticks starting at `base`. Each bucket spans `2^shift` consecutive
//! ticks ([`CalendarQueue::with_window_shift`]; the default is one tick
//! per bucket), so sparse schedules — e.g. MIMD ranks all blocked on
//! memory round-trips, which stride hundreds of ticks between wakes —
//! can widen the window's tick span without growing the ring. Events
//! whose tick falls inside the window go straight to their bucket
//! (amortised O(1)); events beyond the window land in a small `overflow`
//! heap, and events behind the cursor (possible in principle, never
//! produced by the engines, which only schedule at or after the current
//! tick) land in a `past` heap. `pop` takes the lexicographic minimum
//! across the three sources.
//!
//! # Determinism contract
//!
//! The queue emits events in **exactly** the total order
//! `(tick, key, seq)`, where `seq` is a global monotone counter stamped
//! at push time. This is provably identical to the order a
//! `BinaryHeap<Reverse<(tick, seq)>>` produces for `K = ()` (the dataflow
//! engine), and to a `BinaryHeap<Reverse<(tick, rank)>>` for `K = rank`
//! (the MIMD engine, where duplicate `(tick, rank)` entries are
//! value-identical so the `seq` tiebreak is unobservable). Golden stats
//! and fault schedules — which are rolled in pop order — therefore stay
//! bit-for-bit across the scheduler swap. The property test in
//! `crates/sim/tests/equeue_model.rs` checks this order against the heap
//! model for arbitrary interleavings, including behind-cursor inserts
//! and duplicate ticks.
//!
//! # Allocation behaviour
//!
//! All storage (ring buckets, heaps) retains capacity across
//! [`CalendarQueue::clear`], so a queue embedded in an
//! [`EngineArena`](crate::EngineArena) reaches a zero-allocation steady
//! state after the first cell of a sweep.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dlp_common::Tick;

/// Default number of per-tick buckets in the ring.
///
/// Engine events are overwhelmingly scheduled within a few tens of ticks
/// of the cursor (ALU latencies, router hops, a handful of memory
/// round-trips), so 512 buckets keeps the overflow heap cold without
/// making `clear`/rebase scans expensive.
pub const DEFAULT_WINDOW: usize = 512;

/// An event parked in one of the two heaps (overflow or past).
#[derive(Debug)]
struct HeapEntry<K, T> {
    tick: Tick,
    key: K,
    seq: u64,
    value: T,
}

impl<K: Ord, T> PartialEq for HeapEntry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.key == other.key && self.seq == other.seq
    }
}
impl<K: Ord, T> Eq for HeapEntry<K, T> {}
impl<K: Ord, T> PartialOrd for HeapEntry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, T> Ord for HeapEntry<K, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.tick, &self.key, self.seq).cmp(&(other.tick, &other.key, other.seq))
    }
}

/// An event sitting in a ring bucket. The tick is stored explicitly:
/// with a bucket granularity above one tick (`shift > 0`) several
/// distinct ticks share a bucket, so the bucket slot alone no longer
/// determines it.
#[derive(Debug)]
struct Entry<K, T> {
    tick: Tick,
    key: K,
    seq: u64,
    value: T,
}

/// Which of the three storage areas holds the current minimum.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Source {
    Ring,
    Past,
    Overflow,
}

/// A deterministic calendar queue ordered by `(tick, key, seq)`.
///
/// `K` is a per-event priority key compared *after* the tick and *before*
/// the insertion sequence number: the dataflow engine uses `K = ()`
/// (pure FIFO within a tick), the MIMD engine uses `K = usize` (rank).
/// `seq` is stamped internally at [`push`](Self::push) time and is
/// monotone over the queue's lifetime (reset only by
/// [`clear`](Self::clear)).
#[derive(Debug)]
pub struct CalendarQueue<K, T> {
    /// Ring of buckets; the bucket for tick `t` (with
    /// `base <= t < base + (window << shift)`) lives at slot
    /// `(base_slot + ((t - base) >> shift)) & mask`. Each bucket is kept
    /// sorted by `(tick, key, seq)`; `pop_front` is therefore the bucket
    /// minimum.
    ring: Vec<VecDeque<Entry<K, T>>>,
    /// `ring.len() - 1`; the window is always a power of two so circular
    /// slot arithmetic is a mask, not a hardware divide, on the hot path.
    mask: usize,
    /// log2 of the bucket granularity in ticks (0 = one tick per bucket).
    shift: u32,
    /// Occupancy bitmap over ring slots (bit = slot holds ≥1 event), so
    /// the pop cursor skips runs of empty buckets a word at a time
    /// instead of probing them individually — sparse schedules (e.g.
    /// MIMD ranks all blocked on memory round-trips) would otherwise pay
    /// an O(window) bucket scan per pop.
    occ: Vec<u64>,
    /// Tick of the bucket at `base_slot`.
    base: Tick,
    /// Ring slot holding tick `base`.
    base_slot: usize,
    /// Number of events currently stored in ring buckets.
    ring_len: usize,
    /// Events with tick >= base + window.
    overflow: BinaryHeap<Reverse<HeapEntry<K, T>>>,
    /// Events with tick < base (behind the cursor).
    past: BinaryHeap<Reverse<HeapEntry<K, T>>>,
    /// Next sequence number to stamp.
    seq: u64,
    /// Total live events across all three areas.
    len: usize,
}

impl<K: Ord + Copy, T> CalendarQueue<K, T> {
    /// An empty queue with the default window ([`DEFAULT_WINDOW`] ticks).
    #[must_use]
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    /// An empty queue whose ring holds at least `window` single-tick
    /// buckets (rounded up to the next power of two, so slot arithmetic
    /// stays a mask).
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_window(window: usize) -> Self {
        Self::with_window_shift(window, 0)
    }

    /// An empty queue with `window` buckets each spanning `2^shift`
    /// consecutive ticks, so the ring covers `window << shift` ticks
    /// total. A wider granularity trades a short in-bucket sort scan for
    /// keeping sparse schedules (events hundreds of ticks apart) out of
    /// the overflow heap. The pop order is the same `(tick, key, seq)`
    /// total order for **every** shift — bucketing is an implementation
    /// detail, never an observable one.
    ///
    /// # Panics
    /// Panics if `window` is zero or `shift >= 32`.
    #[must_use]
    pub fn with_window_shift(window: usize, shift: u32) -> Self {
        assert!(window > 0, "calendar queue window must be non-zero");
        assert!(shift < 32, "calendar queue bucket shift must be below 32");
        let window = window.next_power_of_two();
        let mut ring = Vec::with_capacity(window);
        ring.resize_with(window, VecDeque::new);
        CalendarQueue {
            ring,
            mask: window - 1,
            shift,
            occ: vec![0u64; window.div_ceil(64)],
            base: 0,
            base_slot: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            past: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Number of events currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all events, retaining every allocation (ring buckets and
    /// heap storage keep their capacity) and resetting the sequence
    /// counter — ready for the next cell of a sweep.
    pub fn clear(&mut self) {
        if self.ring_len > 0 {
            for bucket in &mut self.ring {
                bucket.clear();
            }
        }
        self.occ.fill(0);
        self.ring_len = 0;
        self.overflow.clear();
        self.past.clear();
        self.base = 0;
        self.base_slot = 0;
        self.seq = 0;
        self.len = 0;
    }

    /// Schedule `value` at `tick` with priority `key`.
    ///
    /// Events pushed while the queue is empty rebase the window to start
    /// at `tick`, so the ring is always centred on live work.
    pub fn push(&mut self, tick: Tick, key: K, value: T) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        if self.len == 1 {
            // All areas empty: move the window to the new event.
            self.base = tick;
            self.base_slot = 0;
        }
        let span = (self.ring.len() as Tick) << self.shift;
        if tick < self.base {
            self.past.push(Reverse(HeapEntry { tick, key, seq, value }));
        } else if tick - self.base < span {
            let slot = (self.base_slot + ((tick - self.base) >> self.shift) as usize) & self.mask;
            let bucket = &mut self.ring[slot];
            // Keep the bucket sorted by (tick, key, seq). The new event
            // carries the largest seq so far, so among equal (tick, key)
            // it belongs last; scan from the back (O(1) for single-tick
            // buckets with K = () and for the common in-order case, e.g.
            // MIMD ranks stepping in rank order and each re-scheduling
            // itself).
            let mut pos = bucket.len();
            while pos > 0 && (bucket[pos - 1].tick, bucket[pos - 1].key) > (tick, key) {
                pos -= 1;
            }
            if pos == bucket.len() {
                bucket.push_back(Entry { tick, key, seq, value });
            } else {
                bucket.insert(pos, Entry { tick, key, seq, value });
            }
            self.occ[slot / 64] |= 1 << (slot % 64);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(HeapEntry { tick, key, seq, value }));
        }
    }

    /// Remove and return the minimum event under the `(tick, key, seq)`
    /// total order, as `(tick, key, value)`.
    pub fn pop(&mut self) -> Option<(Tick, K, T)> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == self.len {
            // Fast path: every live event is in the ring — the engines'
            // steady state (the heaps only engage for behind-cursor or
            // beyond-window pushes), so the ring minimum is the global
            // minimum and the three-source comparison can be skipped.
            let slot = self.next_occupied_slot();
            let dist = slot.wrapping_sub(self.base_slot) & self.mask;
            self.base += (dist as Tick) << self.shift;
            self.base_slot = slot;
            let e = self.ring[slot].pop_front()?;
            if self.ring[slot].is_empty() {
                self.occ[slot / 64] &= !(1 << (slot % 64));
            }
            self.ring_len -= 1;
            self.len -= 1;
            return Some((e.tick, e.key, e.value));
        }
        // Candidate from the ring: advance the cursor to the first
        // occupied bucket via the bitmap. Skipped buckets are empty, so
        // moving `base` forward cannot strand events.
        let ring_min = if self.ring_len > 0 {
            let slot = self.next_occupied_slot();
            let dist = slot.wrapping_sub(self.base_slot) & self.mask;
            self.base += (dist as Tick) << self.shift;
            self.base_slot = slot;
            self.ring[slot].front().map(|front| (front.tick, front.key, front.seq))
        } else {
            None
        };
        let mut best = ring_min.map(|m| (m, Source::Ring));
        for (heap, src) in [(&self.past, Source::Past), (&self.overflow, Source::Overflow)] {
            if let Some(Reverse(e)) = heap.peek() {
                let cand = (e.tick, e.key, e.seq);
                if best.is_none_or(|(b, _)| cand < b) {
                    best = Some((cand, src));
                }
            }
        }
        let (_, src) = best?;
        self.len -= 1;
        match src {
            Source::Ring => {
                let e = self.ring[self.base_slot].pop_front()?;
                if self.ring[self.base_slot].is_empty() {
                    self.occ[self.base_slot / 64] &= !(1 << (self.base_slot % 64));
                }
                self.ring_len -= 1;
                Some((e.tick, e.key, e.value))
            }
            Source::Past => {
                let Reverse(e) = self.past.pop()?;
                Some((e.tick, e.key, e.value))
            }
            Source::Overflow => {
                let Reverse(e) = self.overflow.pop()?;
                if self.ring_len == 0 {
                    // Ring is empty, so the window is free to jump to the
                    // event we are handing out; subsequent near-future
                    // pushes land in buckets instead of the heap.
                    self.base = e.tick;
                    self.base_slot = 0;
                }
                Some((e.tick, e.key, e.value))
            }
        }
    }

    /// First occupied ring slot at or (circularly) after `base_slot`.
    ///
    /// Caller guarantees `ring_len > 0`, so some bit is set and the
    /// circular word scan terminates within one lap.
    fn next_occupied_slot(&self) -> usize {
        let mut w = self.base_slot / 64;
        let masked = self.occ[w] & (!0u64 << (self.base_slot % 64));
        if masked != 0 {
            return w * 64 + masked.trailing_zeros() as usize;
        }
        loop {
            w += 1;
            if w == self.occ.len() {
                w = 0;
            }
            if self.occ[w] != 0 {
                return w * 64 + self.occ[w].trailing_zeros() as usize;
            }
        }
    }
}

impl<K: Ord + Copy, T> Default for CalendarQueue<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_tick() {
        let mut q = CalendarQueue::<(), u32>::new();
        q.push(5, (), 1);
        q.push(5, (), 2);
        q.push(3, (), 0);
        q.push(5, (), 3);
        let order: Vec<(Tick, u32)> =
            std::iter::from_fn(|| q.pop().map(|(t, (), v)| (t, v))).collect();
        assert_eq!(order, vec![(3, 0), (5, 1), (5, 2), (5, 3)]);
    }

    #[test]
    fn key_orders_before_seq() {
        let mut q = CalendarQueue::<usize, u32>::new();
        q.push(7, 2, 20);
        q.push(7, 0, 0);
        q.push(7, 1, 10);
        q.push(7, 0, 1);
        let order: Vec<(usize, u32)> =
            std::iter::from_fn(|| q.pop().map(|(_, k, v)| (k, v))).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 10), (2, 20)]);
    }

    #[test]
    fn overflow_beyond_window_is_ordered() {
        let mut q = CalendarQueue::<(), u32>::with_window(4);
        q.push(0, (), 0);
        q.push(1_000_000, (), 3);
        q.push(2, (), 1);
        q.push(500, (), 2);
        let ticks: Vec<Tick> = std::iter::from_fn(|| q.pop().map(|(t, _, _)| t)).collect();
        assert_eq!(ticks, vec![0, 2, 500, 1_000_000]);
    }

    #[test]
    fn rebase_after_drain_keeps_ring_useful() {
        let mut q = CalendarQueue::<(), u32>::with_window(8);
        q.push(10, (), 0);
        assert_eq!(q.pop(), Some((10, (), 0)));
        // Queue empty: the next push rebases far ahead of the old window.
        q.push(10_000, (), 1);
        q.push(10_003, (), 2);
        assert_eq!(q.pop(), Some((10_000, (), 1)));
        assert_eq!(q.pop(), Some((10_003, (), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn behind_cursor_insert_pops_first() {
        let mut q = CalendarQueue::<(), u32>::with_window(8);
        q.push(100, (), 0);
        q.push(105, (), 1);
        assert_eq!(q.pop(), Some((100, (), 0)));
        // Tick 40 is behind the window base (100): must still win.
        q.push(40, (), 2);
        assert_eq!(q.pop(), Some((40, (), 2)));
        assert_eq!(q.pop(), Some((105, (), 1)));
    }

    #[test]
    fn clear_resets_and_retains_order_semantics() {
        let mut q = CalendarQueue::<(), u32>::with_window(4);
        for t in 0..32 {
            q.push(t, (), t as u32);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(3, (), 7);
        q.push(3, (), 8);
        assert_eq!(q.pop(), Some((3, (), 7)));
        assert_eq!(q.pop(), Some((3, (), 8)));
    }

    #[test]
    fn wide_buckets_preserve_total_order() {
        // shift = 3 → each bucket spans 8 ticks; strides large enough
        // that several distinct ticks share a bucket and several pushes
        // land beyond the ring. Order must match the shift-0 queue.
        let mut narrow = CalendarQueue::<usize, u64>::with_window_shift(16, 0);
        let mut wide = CalendarQueue::<usize, u64>::with_window_shift(16, 3);
        let mut rng = dlp_common::SplitMix64::new(0xB1_0F15);
        let mut now = 0;
        for seq in 0..20_000u64 {
            if seq % 3 == 2 {
                let a = narrow.pop();
                let b = wide.pop();
                assert_eq!(a, b);
                if let Some((t, _, _)) = a {
                    now = t;
                }
            } else {
                let t = now + (rng.next_u64() % 300);
                let key = (rng.next_u64() % 5) as usize;
                narrow.push(t, key, seq);
                wide.push(t, key, seq);
            }
        }
        loop {
            let a = narrow.pop();
            assert_eq!(a, wide.pop());
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn interleaved_push_pop_matches_heap_model() {
        // A deterministic smoke version of the proptest model check.
        let mut q = CalendarQueue::<(), u64>::with_window(16);
        let mut model: BinaryHeap<Reverse<(Tick, u64)>> = BinaryHeap::new();
        let mut rng = dlp_common::SplitMix64::new(0xE0_E0);
        let mut seq = 0u64;
        let mut now = 0;
        for step in 0..10_000u64 {
            if step % 3 == 0 && !model.is_empty() {
                let Some(Reverse((mt, ms))) = model.pop() else {
                    unreachable!()
                };
                let got = q.pop();
                assert_eq!(got, Some((mt, (), ms)));
                now = mt;
            } else {
                let t = now + (rng.next_u64() % 40);
                model.push(Reverse((t, seq)));
                q.push(t, (), seq);
                seq += 1;
            }
        }
        while let Some(Reverse((mt, ms))) = model.pop() {
            assert_eq!(q.pop(), Some((mt, (), ms)));
        }
        assert!(q.is_empty());
    }
}
