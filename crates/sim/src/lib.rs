//! # trips-sim
//!
//! The event-driven timing simulator for the TRIPS-style grid processor of
//! *"Universal Mechanisms for Data-Parallel Architectures"* (MICRO 2003),
//! with all six of the paper's universal mechanisms implemented as
//! composable [`MechanismSet`] flags:
//!
//! | Mechanism | Flag | Paper section |
//! |---|---|---|
//! | Software-managed streamed memory (SMC, DMA, row channels, LMW) | `smc` | §4.2 |
//! | Hardware-managed cached L1 | always present | §4.2 |
//! | Instruction revitalization (CTR + revitalize broadcast) | `inst_revitalization` | §4.3 |
//! | Local program counters (MIMD execution) | `local_pc` | §4.3 |
//! | Operand revitalization (persistent reservation-station operands) | `operand_revitalization` | §4.4 |
//! | L0 software-managed data store at each ALU | `l0_data_store` | §4.4 |
//!
//! The simulator is **functional as well as timed**: every ALU computes real
//! values (via [`trips_isa::exec`]) and loads/stores hit a real
//! [`trips_mem::MainMemory`], so a simulated kernel's outputs can be
//! asserted equal to an independent reference implementation — the backbone
//! of this workspace's correctness story.
//!
//! Two engines share the machine state:
//!
//! * [`Machine::run_dataflow`] — block-atomic SPDI execution for the
//!   baseline and the S / S-O / S-O-D configurations;
//! * [`Machine::run_mimd`] — per-node local-PC execution for the M / M-D
//!   configurations.
//!
//! # Example
//!
//! ```
//! use trips_sim::{Machine, MechanismSet};
//! use trips_isa::{PlacedInst, DataflowBlock, Slot, Target, Port, Opcode};
//! use dlp_common::{Coord, GridShape, TimingParams, Value};
//!
//! // One MovI feeding an Add that writes register 0: the answer machine.
//! let s0 = Slot::new(Coord::new(0, 0), 0);
//! let s1 = Slot::new(Coord::new(0, 1), 0);
//! let mut a = PlacedInst::new(s0, Opcode::MovI);
//! a.imm = Some(Value::from_u64(21));
//! a.targets = vec![Target::port(s1, Port::Left)];
//! let mut b = PlacedInst::new(s1, Opcode::Add);
//! b.imm = Some(Value::from_u64(21));
//! b.targets = vec![Target::Reg(0)];
//! let block = DataflowBlock::new("answer", vec![a, b], vec![]);
//!
//! let mut m = Machine::new(GridShape::new(8, 8), TimingParams::default(),
//!                          MechanismSet::baseline());
//! let stats = m.run_dataflow(&block, 1)?;
//! assert_eq!(m.reg(0).as_u64(), 42);
//! assert!(stats.cycles() > 0);
//! # Ok::<(), dlp_common::DlpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panicking escape hatches are banned outside tests: a bad cell or an
// injected fault must surface as a structured `DlpError`, never tear
// down a whole sweep (CI promotes these to errors).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod arena;
pub mod batch;
mod dataflow;
pub mod equeue;
mod machine;
mod mechanisms;
mod mimd;
mod partition;

pub use arena::EngineArena;
pub use machine::Machine;
pub use mechanisms::MechanismSet;
pub use partition::Partition;

/// Default watchdog limit: a run exceeding this many simulated ticks fails
/// with [`dlp_common::DlpError::Watchdog`]. Lower it per machine with
/// [`Machine::set_watchdog`] when driving untrusted or generated programs.
pub const WATCHDOG_TICKS: dlp_common::Tick = 2_000_000_000;
