//! Lane-batched execution: N variants of one prepared lowering run in
//! lockstep through a single shared calendar queue (DESIGN.md §10).
//!
//! A *lane class* is one complete scalar run — same block or programs,
//! its own [`Machine`] (memory image, registers, router, caches, fault
//! injector) — and up to [`MAX_CLASSES`] classes execute simultaneously.
//! Queue events carry a class **bitmask**: classes whose schedules agree
//! share one event (one queue entry, one bucket walk, one readiness
//! check covers all of them), and classes that diverge (faults, early
//! errors) simply mask off rather than fork the run.
//!
//! Per-class state is structure-of-arrays with the class index
//! innermost: operand values are `[frame][inst][port][class]` strides,
//! operand presence and executed flags are one `u64` bitmask per
//! `[frame][inst][port]` / `[frame][inst]`, and issue/register-port
//! throttles are `[resource][class]`. The hot latch/readiness path is
//! branch-free over the class dimension so the compiler can vectorize
//! it.
//!
//! **Determinism.** Per-class results are bit-identical to scalar runs
//! (`run_dataflow_in` / `run_mimd_in`) because, for every class `c`, the
//! restriction of the shared queue's pop order to events containing `c`
//! equals the scalar queue's `(tick, key, seq)` order. Pushes produced
//! while processing one popped event are buffered and merged across
//! classes under the *cursor rule*: class `c` may join a buffered entry
//! only at or past its own cursor (the position after its previous
//! push) and only if the entry does not already carry bit `c`. This
//! keeps each class's flush positions strictly increasing in its push
//! order — so per-class sequence numbers are monotone in scalar push
//! order — and preserves per-class multiplicity (two same-payload pushes
//! by one class stay two entries, exactly like the scalar MIMD
//! send-to-self wakeup). Classes within one event are processed in
//! ascending class index, and no per-class computation reads another
//! class's state, so lane order cannot leak into results.

// Lane classes are addressed by a dense index `c` into parallel SoA
// arrays (machines, stats, masks, cursors); index loops are the
// natural form here, not an iterator smell.
#![allow(clippy::needless_range_loop)]

use dlp_common::{DlpError, SimStats, Tick, Value};
use trips_isa::{
    DataflowBlock, MemSpace, MimdInst, MimdOp, MimdProgram, OpClass, OpRole, Opcode, Port,
    REG_NODE_COUNT, REG_NODE_ID, REG_RECORDS,
};
use trips_mem::Throttle;
use trips_noc::Endpoint;

use crate::dataflow::{port_idx, reserve_cycle, DataflowScratch, ResolvedTarget};
use crate::equeue::CalendarQueue;
use crate::mimd::{Channels, NodeState, RankCoord, Step, MIMD_BUCKET_SHIFT};
use crate::{EngineArena, Machine};

/// Maximum lane classes per batched dispatch (the event bitmask width).
pub const MAX_CLASSES: usize = 64;

/// Sentinel instruction index marking a quiesce (bookkeeping) event.
const NO_INST: u32 = u32::MAX;
/// Sentinel row index for events that carry no operand values.
const NO_ROW: u32 = u32::MAX;

/// One buffered (not yet flushed) push from the current merge window.
#[derive(Clone, Copy)]
struct Pending {
    tick: Tick,
    /// Dataflow: frame index. MIMD: rank.
    slot: u32,
    /// Dataflow: destination instruction or [`NO_INST`]. MIMD: unused (0).
    inst: u32,
    /// Dataflow: destination port index 0..3. MIMD: unused (0).
    port: u8,
    mask: u64,
    /// Dataflow operand events: index of the per-class value row.
    row: u32,
}

/// A queued event: the payload identity plus the class mask.
#[derive(Clone, Copy)]
struct BatchEv {
    mask: u64,
    frame: u32,
    inst: u32,
    port: u8,
    row: u32,
}

/// The shared merge buffer: pending pushes for the current window plus
/// each class's cursor (the pend index after its latest push).
#[derive(Default)]
struct MergeBuf {
    pend: Vec<Pending>,
    cursors: Vec<usize>,
}

impl MergeBuf {
    fn reset(&mut self, nc: usize) {
        self.pend.clear();
        self.cursors.clear();
        self.cursors.resize(nc, 0);
    }

    /// Buffer one push for class `c` under the cursor rule: join the
    /// first entry at or past `cursors[c]` with identical
    /// `(tick, slot, inst, port)` that does not yet carry bit `c`, else
    /// append. Returns the pend index the push landed in, and whether it
    /// was an append (the caller allocates value rows on appends).
    fn push(&mut self, c: usize, tick: Tick, slot: u32, inst: u32, port: u8) -> (usize, bool) {
        let bit = 1u64 << c;
        let start = self.cursors[c];
        for idx in start..self.pend.len() {
            let p = &mut self.pend[idx];
            if p.tick == tick
                && p.slot == slot
                && p.inst == inst
                && p.port == port
                && p.mask & bit == 0
            {
                p.mask |= bit;
                self.cursors[c] = idx + 1;
                return (idx, false);
            }
        }
        self.pend.push(Pending { tick, slot, inst, port, mask: bit, row: NO_ROW });
        self.cursors[c] = self.pend.len();
        (self.pend.len() - 1, true)
    }
}

// ---------------------------------------------------------------------------
// Dataflow
// ---------------------------------------------------------------------------

/// Recyclable storage for one batched dataflow run, owned by an
/// [`EngineArena`](crate::EngineArena). Block-shape tables live in the
/// embedded [`DataflowScratch`] and are built by the same
/// `build_tables` the scalar engine uses, so routing and readiness are
/// bit-identical by construction.
#[derive(Default)]
pub(crate) struct BatchDataflowScratch {
    /// Shared block tables (only the table fields are used here).
    pub(crate) tables: DataflowScratch,
    events: CalendarQueue<(), BatchEv>,
    buf: MergeBuf,
    /// Operand values, `[frame][inst][port][class]` (class innermost).
    ops_val: Vec<Value>,
    /// Operand-present bitmasks, one per `[frame][inst][port]`.
    ops_set: Vec<u64>,
    /// Executed bitmasks, one per `[frame][inst]`.
    executed: Vec<u64>,
    /// Executed-instruction counts, `[frame][class]`.
    exec_count: Vec<u32>,
    /// Outstanding events per `[frame][class]`.
    pending: Vec<u32>,
    /// Latest event tick per `[frame][class]`.
    frame_last_tick: Vec<Tick>,
    /// Kernel iteration per `[frame][class]`.
    frame_iter: Vec<u64>,
    /// Issue throttles, `[node][class]`.
    node_issue: Vec<Throttle>,
    /// Register-bank read-port throttles, `[bank][class]`.
    reg_bank_ports: Vec<Throttle>,
    /// Per-class value rows: row `r` is `rows[r*nc..(r+1)*nc]`.
    rows: Vec<Value>,
    free_rows: Vec<u32>,
    // Per-class run state.
    fetch_done: Vec<Tick>,
    next_iter: Vec<u64>,
    done_iters: Vec<u64>,
    final_tick: Vec<Tick>,
    /// Outstanding queued events per class (frames summed).
    live: Vec<u64>,
    stats: Vec<SimStats>,
    results: Vec<Option<Result<SimStats, DlpError>>>,
    /// Classes that latched a result and no longer process events.
    dead: u64,
}

/// Loop-invariant context for one batched dataflow run.
#[derive(Clone, Copy)]
struct DfCtx {
    nc: usize,
    len: usize,
    banks: u16,
    reg_cols: u8,
    op_revit: bool,
    inst_revit: bool,
    per_fetch: Tick,
    revitalize_delay: Tick,
    iterations: u64,
}

fn df_alloc_row(s: &mut BatchDataflowScratch, nc: usize) -> u32 {
    if let Some(r) = s.free_rows.pop() {
        return r;
    }
    let r = (s.rows.len() / nc) as u32;
    s.rows.resize(s.rows.len() + nc, Value::ZERO);
    r
}

/// Buffer one operand/quiesce push for class `c`. `inst == NO_INST`
/// means quiesce (no value row).
#[allow(clippy::too_many_arguments)]
fn df_buffer(
    s: &mut BatchDataflowScratch,
    ctx: DfCtx,
    c: usize,
    tick: Tick,
    frame: usize,
    inst: u32,
    port: u8,
    value: Value,
) {
    let (idx, appended) = s.buf.push(c, tick, frame as u32, inst, port);
    if inst != NO_INST {
        if appended {
            let row = df_alloc_row(s, ctx.nc);
            s.buf.pend[idx].row = row;
        }
        let row = s.buf.pend[idx].row as usize;
        s.rows[row * ctx.nc + c] = value;
    }
    s.pending[frame * ctx.nc + c] += 1;
    s.live[c] += 1;
}

fn df_flush(s: &mut BatchDataflowScratch) {
    for idx in 0..s.buf.pend.len() {
        let p = s.buf.pend[idx];
        s.events.push(
            p.tick,
            (),
            BatchEv { mask: p.mask, frame: p.slot, inst: p.inst, port: p.port, row: p.row },
        );
    }
    s.buf.pend.clear();
    for cur in &mut s.buf.cursors {
        *cur = 0;
    }
}

fn df_kill(s: &mut BatchDataflowScratch, c: usize, err: DlpError) {
    s.results[c] = Some(Err(err));
    s.dead |= 1u64 << c;
}

/// Seed one iteration's initial activity for class `c` at `start` on
/// `frame` — the exact scalar `seed_iteration`, buffered.
#[allow(clippy::too_many_arguments)]
fn df_seed_iteration(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
    start: Tick,
    iter: u64,
    first: bool,
) {
    let nc = ctx.nc;
    s.frame_iter[frame * nc + c] = iter;
    let lt = &mut s.frame_last_tick[frame * nc + c];
    *lt = (*lt).max(start);
    for (ri, rr) in block.reg_reads().iter().enumerate() {
        if !first && ctx.op_revit && rr.persistent {
            continue; // value survived revitalization
        }
        let bank = (rr.reg % ctx.banks) as usize;
        let inject = reserve_cycle(&mut s.reg_bank_ports[bank * nc + c], start);
        s.stats[c].reg_reads += 1;
        let bank_col = (bank as u8).min(ctx.reg_cols - 1);
        let value = m.regs[rr.reg as usize];
        let (span_start, span_end) = s.tables.reg_read_span[ri];
        for k in span_start..span_end {
            let (inst, port, node) = s.tables.reg_read_dsts[k as usize];
            let arrive = m.router.send_faulty(
                Endpoint::RegBank(bank_col),
                Endpoint::Node(node),
                inject,
                &mut m.fault,
            );
            let arrive = m.fault.operand_write(arrive);
            df_buffer(s, ctx, c, arrive, frame, inst as u32, port_idx(port) as u8, value);
        }
    }
    // Source instructions with no required operands fire at start.
    let bit = 1u64 << c;
    for i in 0..ctx.len {
        if s.executed[frame * ctx.len + i] & bit != 0 {
            continue;
        }
        let b3 = (frame * ctx.len + i) * 3;
        let req = s.tables.required[i];
        let ready = (!req[0] || s.ops_set[b3] & bit != 0)
            && (!req[1] || s.ops_set[b3 + 1] & bit != 0)
            && (!req[2] || s.ops_set[b3 + 2] & bit != 0);
        if ready {
            df_execute(ctx, block, s, m, c, frame, i, start);
        }
    }
}

/// Issue and execute instruction `i` for class `c` — the exact scalar
/// `execute`, against class-local machine and SoA state.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn df_execute(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
    i: usize,
    t: Tick,
) {
    let nc = ctx.nc;
    let bit = 1u64 << c;
    let inst = &block.insts()[i];
    let node = inst.slot.node;
    let node_idx = s.tables.inst_node[i];
    let issue = reserve_cycle(&mut s.node_issue[node_idx * nc + c], t);
    s.executed[frame * ctx.len + i] |= bit;
    s.exec_count[frame * nc + c] += 1;

    let lat = inst.op.latency(&m.params().ops);
    let b3 = (frame * ctx.len + i) * 3;
    let op_val = |s: &BatchDataflowScratch, p: usize| -> Option<Value> {
        if s.ops_set[b3 + p] & bit != 0 {
            Some(s.ops_val[(b3 + p) * nc + c])
        } else {
            None
        }
    };
    let l = op_val(s, 0).unwrap_or(Value::ZERO);
    let r = op_val(s, 1).or(inst.imm).unwrap_or(Value::ZERO);
    let p = op_val(s, 2).unwrap_or(Value::ZERO);
    let iter = s.frame_iter[frame * nc + c];

    // Metric accounting.
    match inst.op {
        Opcode::Load(_) | Opcode::Lmw => s.stats[c].loads += 1,
        Opcode::Store(_) => s.stats[c].stores += 1,
        Opcode::Lut => s.stats[c].l0_accesses += 1,
        _ => {}
    }
    let countable = !inst.op.is_mem() && inst.op.class() != OpClass::Mov;
    if countable && inst.role == OpRole::Useful {
        s.stats[c].useful_ops += 1;
    } else {
        s.stats[c].overhead_ops += 1;
    }

    let row = node.row;
    match inst.op {
        Opcode::MovI => {
            let v = inst.imm.unwrap_or(Value::ZERO);
            df_fan_out(ctx, block, s, m, c, frame, i, issue + lat, v);
        }
        Opcode::Iter => {
            df_fan_out(ctx, block, s, m, c, frame, i, issue + lat, Value::from_u64(iter));
        }
        Opcode::Nop => {}
        Opcode::Lut => {
            let index = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
            let v = m.l0_data.get(index as usize).copied().unwrap_or(Value::ZERO);
            let done = issue + m.params().mem.l0_latency;
            df_fan_out(ctx, block, s, m, c, frame, i, done, v);
        }
        Opcode::Load(space) => {
            let addr = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
            let handoff = issue + lat;
            let req = m.router.send_faulty(
                Endpoint::Node(node),
                Endpoint::MemPort(row),
                handoff,
                &mut m.fault,
            );
            let served = match space {
                MemSpace::Smc => {
                    s.stats[c].smc_accesses += 1;
                    m.smc[row as usize].access_faulty(addr, req, &mut m.fault)
                }
                MemSpace::L1 => {
                    s.stats[c].l1_accesses += 1;
                    let (t2, hit) = m.l1[row as usize].access_faulty(addr, req, &mut m.fault);
                    if !hit {
                        s.stats[c].l1_misses += 1;
                    }
                    t2
                }
            };
            let back = m.router.send_faulty(
                Endpoint::MemPort(row),
                Endpoint::Node(node),
                served,
                &mut m.fault,
            );
            let v = m.mem.read(addr);
            df_fan_out(ctx, block, s, m, c, frame, i, back, v);
        }
        Opcode::Lmw => {
            let addr = l.as_u64();
            let n = inst.imm.map_or(0, |v| v.as_u64()) as u32;
            let handoff = issue + lat;
            let req = m.router.send_faulty(
                Endpoint::Node(node),
                Endpoint::MemPort(row),
                handoff,
                &mut m.fault,
            );
            s.stats[c].smc_accesses += 1;
            s.stats[c].lmw_words += u64::from(n);
            let served = m.smc[row as usize].access_wide_faulty(addr, n, req, &mut m.fault);
            // The streaming channel delivers word k straight to target k.
            let (span_start, span_end) = s.tables.resolved_span[i];
            for (k, ti) in (span_start..span_end).enumerate() {
                let tgt = s.tables.resolved[ti as usize];
                let v = m.mem.read(addr + k as u64);
                df_deliver(ctx, s, m, c, frame, tgt, Endpoint::MemPort(row), served, v);
            }
        }
        Opcode::Store(space) => {
            let addr = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
            m.mem.write(addr, r);
            let handoff = issue + lat;
            let req = m.router.send_faulty(
                Endpoint::Node(node),
                Endpoint::MemPort(row),
                handoff,
                &mut m.fault,
            );
            let drained = match space {
                MemSpace::Smc => {
                    let t2 = m.stb[row as usize].push_faulty(addr, req, &mut m.fault);
                    m.smc[row as usize].store_faulty(addr, t2, &mut m.fault)
                }
                MemSpace::L1 => {
                    s.stats[c].l1_accesses += 1;
                    let (t2, hit) = m.l1[row as usize].access_faulty(addr, req, &mut m.fault);
                    if !hit {
                        s.stats[c].l1_misses += 1;
                    }
                    t2
                }
            };
            df_buffer(s, ctx, c, drained, frame, NO_INST, 0, Value::ZERO);
        }
        _ => {
            let v = trips_isa::exec::eval(inst.op, l, r, p);
            df_fan_out(ctx, block, s, m, c, frame, i, issue + lat, v);
        }
    }
}

/// Route instruction `i`'s result to all its targets at `t`.
#[allow(clippy::too_many_arguments)]
fn df_fan_out(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
    i: usize,
    t: Tick,
    v: Value,
) {
    let node = block.insts()[i].slot.node;
    let (span_start, span_end) = s.tables.resolved_span[i];
    for ti in span_start..span_end {
        let tgt = s.tables.resolved[ti as usize];
        df_deliver(ctx, s, m, c, frame, tgt, Endpoint::Node(node), t, v);
    }
    if span_start == span_end {
        df_buffer(s, ctx, c, t, frame, NO_INST, 0, Value::ZERO);
    }
}

#[allow(clippy::too_many_arguments)]
fn df_deliver(
    ctx: DfCtx,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
    tgt: ResolvedTarget,
    from: Endpoint,
    t: Tick,
    v: Value,
) {
    match tgt {
        ResolvedTarget::Port { inst, node, port } => {
            let arrive = m.router.send_faulty(from, Endpoint::Node(node), t, &mut m.fault);
            // The destination reservation station is an operand store:
            // a flipped entry is detected by parity and re-latched.
            let arrive = m.fault.operand_write(arrive);
            df_buffer(s, ctx, c, arrive, frame, inst as u32, port_idx(port) as u8, v);
        }
        ResolvedTarget::Reg { reg, bank_col } => {
            let arrive = m.router.send_faulty(from, Endpoint::RegBank(bank_col), t, &mut m.fault);
            m.regs[reg as usize] = v;
            s.stats[c].reg_writes += 1;
            df_buffer(s, ctx, c, arrive, frame, NO_INST, 0, Value::ZERO);
        }
    }
}

/// Reset class `c`'s view of a frame for its next iteration.
fn df_reset_frame(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    c: usize,
    frame: usize,
    keep_persistent: bool,
) {
    let op_revit = keep_persistent && ctx.op_revit;
    let bit = 1u64 << c;
    for i in 0..ctx.len {
        s.executed[frame * ctx.len + i] &= !bit;
        let persist = block.insts()[i].persistent;
        let b3 = (frame * ctx.len + i) * 3;
        for (pi, port) in [Port::Left, Port::Right, Port::Pred].into_iter().enumerate() {
            if !(op_revit && persist.contains(port)) {
                s.ops_set[b3 + pi] &= !bit;
            }
        }
    }
    s.exec_count[frame * ctx.nc + c] = 0;
}

/// Class `c`'s frame `frame` has no outstanding events: complete the
/// iteration (or latch the scalar stall error) and seed the next one.
fn df_complete_iteration(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
) {
    let nc = ctx.nc;
    if s.exec_count[frame * nc + c] as usize != ctx.len {
        let detail = format!(
            "block {}: iteration {} stalled with {}/{} instructions executed",
            block.name(),
            s.frame_iter[frame * nc + c],
            s.exec_count[frame * nc + c],
            ctx.len
        );
        df_kill(s, c, DlpError::MalformedProgram { detail });
        return;
    }
    s.done_iters[c] += 1;
    let t = s.frame_last_tick[frame * nc + c];
    s.final_tick[c] = s.final_tick[c].max(t);
    if s.next_iter[c] < ctx.iterations {
        let start = if ctx.inst_revit {
            s.stats[c].revitalizations += 1;
            df_reset_frame(ctx, block, s, c, frame, true);
            t + ctx.revitalize_delay
        } else {
            s.fetch_done[c] += ctx.per_fetch;
            s.stats[c].blocks_fetched += 1;
            df_reset_frame(ctx, block, s, c, frame, false);
            t.max(s.fetch_done[c])
        };
        df_seed_iteration(ctx, block, s, m, c, frame, start, s.next_iter[c], false);
        s.next_iter[c] += 1;
    }
}

/// Class `c` has drained every event: latch its final result (or the
/// scalar completion/fault error).
fn df_finalize(
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    iterations: u64,
    block: &DataflowBlock,
) {
    // A fault escalated by the very last event has no successor pop to
    // observe it — catch it before declaring the run complete.
    if let Some(fatal) = m.fault.fatal() {
        df_kill(s, c, fatal.to_error());
        return;
    }
    if s.done_iters[c] != iterations {
        let detail =
            format!("block {}: completed {}/{} iterations", block.name(), s.done_iters[c], iterations);
        df_kill(s, c, DlpError::MalformedProgram { detail });
        return;
    }
    let mut stats = s.stats[c];
    stats.ticks = s.final_tick[c];
    let net = m.router.stats();
    stats.net_msgs = net.msgs;
    stats.net_hops = net.hops;
    stats.record_faults(m.fault.take_stats());
    s.results[c] = Some(Ok(stats));
    s.dead |= 1u64 << c;
}

/// Execute `block` for `iterations` on every machine in `machines`
/// simultaneously, one lane class per machine, and return each class's
/// result — bit-identical to running
/// [`Machine::run_dataflow_in`](crate::Machine::run_dataflow_in) on each
/// machine alone.
///
/// All machines must share one grid, timing model, and mechanism set
/// (they are variants of one prepared lowering: different workload
/// seeds, fault plans, or attempt salts). The caller guarantees this;
/// grids are asserted.
///
/// # Panics
///
/// If `machines` is empty, longer than [`MAX_CLASSES`], or the machines
/// disagree on grid shape.
#[allow(clippy::too_many_lines)]
pub fn run_dataflow_batch_in(
    machines: &mut [Machine],
    block: &DataflowBlock,
    iterations: u64,
    arena: &mut EngineArena,
) -> Vec<Result<SimStats, DlpError>> {
    let nc = machines.len();
    assert!(
        (1..=MAX_CLASSES).contains(&nc),
        "batched dispatch takes 1..={MAX_CLASSES} lane classes, got {nc}"
    );
    assert!(
        machines.iter().all(|m| m.grid() == machines[0].grid()),
        "batched lane classes must share one grid shape"
    );
    if machines[0].mechanisms().local_pc {
        return (0..nc)
            .map(|_| {
                Err(DlpError::Unsupported {
                    what: "dataflow blocks on a machine configured for MIMD (local PCs)".into(),
                })
            })
            .collect();
    }
    let s = &mut arena.batch_dataflow;
    if let Err(e) = s.tables.build_tables(block, &machines[0]) {
        return (0..nc).map(|_| Err(e.clone())).collect();
    }

    let mech = machines[0].mechanisms();
    let params = *machines[0].params();
    let inst_revit = mech.inst_revitalization;
    let n_frames = if inst_revit {
        1
    } else {
        (params.fetch.baseline_frames.max(1) as usize).min(iterations.max(1) as usize)
    };
    let len = block.len();
    let ctx = DfCtx {
        nc,
        len,
        banks: params.core.reg_banks.max(1) as u16,
        reg_cols: machines[0].grid().cols(),
        op_revit: mech.operand_revitalization,
        inst_revit,
        per_fetch: if inst_revit {
            machines[0].fetch_ticks(len)
        } else {
            machines[0].fetch_ticks_baseline(len)
        },
        revitalize_delay: params.fetch.revitalize_delay,
        iterations,
    };

    // Reset all recyclable state for `nc` classes and `n_frames` frames.
    s.events.clear();
    s.buf.reset(nc);
    s.rows.clear();
    s.free_rows.clear();
    s.ops_val.clear();
    s.ops_val.resize(n_frames * len * 3 * nc, Value::ZERO);
    s.ops_set.clear();
    s.ops_set.resize(n_frames * len * 3, 0);
    s.executed.clear();
    s.executed.resize(n_frames * len, 0);
    s.exec_count.clear();
    s.exec_count.resize(n_frames * nc, 0);
    s.pending.clear();
    s.pending.resize(n_frames * nc, 0);
    s.frame_last_tick.clear();
    s.frame_last_tick.resize(n_frames * nc, 0);
    s.frame_iter.clear();
    s.frame_iter.resize(n_frames * nc, 0);
    s.node_issue.clear();
    s.node_issue.resize(machines[0].grid().nodes() * nc, Throttle::new(1));
    let reads_per = params.core.reg_reads_per_bank_per_cycle.max(1);
    s.reg_bank_ports.clear();
    s.reg_bank_ports.resize(ctx.banks as usize * nc, Throttle::new(reads_per));
    s.fetch_done.clear();
    s.fetch_done.resize(nc, 0);
    s.next_iter.clear();
    s.next_iter.resize(nc, 0);
    s.done_iters.clear();
    s.done_iters.resize(nc, 0);
    s.final_tick.clear();
    s.final_tick.resize(nc, 0);
    s.live.clear();
    s.live.resize(nc, 0);
    s.stats.clear();
    s.results.clear();
    s.results.resize(nc, None);
    s.dead = 0;

    for m in machines.iter_mut() {
        let mut base = m.begin_run();
        base.iterations = iterations;
        s.stats.push(base);
    }
    if iterations == 0 {
        return s.stats.iter().map(|&st| Ok(st)).collect();
    }

    // Seed the initial frames through the (pipelined) fetch engine. All
    // classes share the frame schedule (same iterations, same params);
    // seed ticks may differ per class (staging under faults), which the
    // merge buffer handles like any divergence.
    for c in 0..nc {
        s.fetch_done[c] = s.stats[c].ticks + params.fetch.map_overhead;
    }
    let mut seeded: u64 = 0;
    for frame in 0..n_frames {
        for c in 0..nc {
            s.fetch_done[c] += ctx.per_fetch;
            s.stats[c].blocks_fetched += 1;
            df_seed_iteration(ctx, block, s, &mut machines[c], c, frame, s.fetch_done[c], seeded, true);
            s.next_iter[c] = seeded + 1;
        }
        seeded += 1;
        if seeded >= iterations {
            break;
        }
    }
    for c in 0..nc {
        s.final_tick[c] = s.fetch_done[c];
    }
    df_flush(s);
    // A class whose seeding produced no events (e.g. an all-Nop block)
    // finalizes immediately, exactly like the scalar empty event loop.
    for c in 0..nc {
        if s.live[c] == 0 && s.dead & (1u64 << c) == 0 {
            df_finalize(s, &mut machines[c], c, iterations, block);
        }
    }

    // Event loop across all in-flight frames and classes.
    while let Some((tick, (), ev)) = s.events.pop() {
        let alive = ev.mask & !s.dead;
        let frame = ev.frame as usize;

        // Per-class guards, ascending class index (scalar error order).
        let mut proc: u64 = 0;
        let mut bits = alive;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if tick > machines[c].watchdog_ticks {
                let context = format!(
                    "dataflow block '{}' ({}/{} iterations done)",
                    block.name(),
                    s.done_iters[c],
                    iterations
                );
                df_kill(s, c, DlpError::Watchdog { ticks: tick, context });
                continue;
            }
            if let Some(fatal) = machines[c].fault.fatal() {
                df_kill(s, c, fatal.to_error());
                continue;
            }
            proc |= 1u64 << c;
        }

        // Bookkeeping — branch-free over the class stride.
        let fbase = frame * nc;
        for c in 0..nc {
            let take = (proc >> c) & 1;
            s.pending[fbase + c] -= take as u32;
            let lt = s.frame_last_tick[fbase + c];
            s.frame_last_tick[fbase + c] = if take != 0 { lt.max(tick) } else { lt };
        }

        if ev.inst != NO_INST {
            let i = ev.inst as usize;
            let b3 = (frame * len + i) * 3;
            let slot = b3 + ev.port as usize;
            // Latch the operand for every processing class (masked copy
            // over contiguous per-class strides).
            let rbase = ev.row as usize * nc;
            let vbase = slot * nc;
            for c in 0..nc {
                let take = (proc >> c) & 1;
                let old = s.ops_val[vbase + c];
                s.ops_val[vbase + c] = if take != 0 { s.rows[rbase + c] } else { old };
            }
            s.ops_set[slot] |= proc;
            // Readiness for all classes at once: one AND tree.
            let req = s.tables.required[i];
            let m0 = if req[0] { s.ops_set[b3] } else { !0u64 };
            let m1 = if req[1] { s.ops_set[b3 + 1] } else { !0u64 };
            let m2 = if req[2] { s.ops_set[b3 + 2] } else { !0u64 };
            let mut ready = proc & !s.executed[frame * len + i] & m0 & m1 & m2;
            while ready != 0 {
                let c = ready.trailing_zeros() as usize;
                ready &= ready - 1;
                df_execute(ctx, block, s, &mut machines[c], c, frame, i, tick);
            }
        }

        // Iteration-completion checks, ascending class index.
        let mut bits = proc;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if s.pending[fbase + c] == 0 {
                df_complete_iteration(ctx, block, s, &mut machines[c], c, frame);
            }
        }

        if ev.row != NO_ROW {
            s.free_rows.push(ev.row);
        }
        df_flush(s);

        // Consume the event; classes that drained finalize.
        let mut bits = alive & !s.dead;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            s.live[c] -= 1;
            if s.live[c] == 0 {
                df_finalize(s, &mut machines[c], c, iterations, block);
            }
        }
    }

    s.results
        .iter_mut()
        .map(|r| {
            r.take().unwrap_or_else(|| {
                Err(DlpError::Internal {
                    detail: "batched dataflow engine left a lane class unresolved".into(),
                })
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// MIMD
// ---------------------------------------------------------------------------

/// Recyclable storage for one batched MIMD run, owned by an
/// [`EngineArena`](crate::EngineArena).
pub(crate) struct BatchMimdScratch {
    /// Ready queue keyed by rank; the payload is the class mask.
    queue: CalendarQueue<usize, u64>,
    buf: MergeBuf,
    /// Per-class channel tables.
    channels: Vec<Channels>,
    /// Node state, `[rank][class]` (class innermost).
    nodes: Vec<NodeState>,
    /// Participating node indices in rank order.
    ranks: Vec<usize>,
    coords: Vec<dlp_common::Coord>,
    send_coords: Vec<dlp_common::Coord>,
    // Per-class run state.
    steps: Vec<u64>,
    last_tick: Vec<Tick>,
    max_drain: Vec<Tick>,
    live: Vec<u64>,
    stats: Vec<SimStats>,
    results: Vec<Option<Result<SimStats, DlpError>>>,
    dead: u64,
}

impl Default for BatchMimdScratch {
    fn default() -> Self {
        BatchMimdScratch {
            queue: CalendarQueue::with_window_shift(crate::equeue::DEFAULT_WINDOW, MIMD_BUCKET_SHIFT),
            buf: MergeBuf::default(),
            channels: Vec::new(),
            nodes: Vec::new(),
            ranks: Vec::new(),
            coords: Vec::new(),
            send_coords: Vec::new(),
            steps: Vec::new(),
            last_tick: Vec::new(),
            max_drain: Vec::new(),
            live: Vec::new(),
            stats: Vec::new(),
            results: Vec::new(),
            dead: 0,
        }
    }
}

fn mimd_buffer_wake(s: &mut BatchMimdScratch, c: usize, tick: Tick, rank: usize) {
    let _ = s.buf.push(c, tick, rank as u32, 0, 0);
    s.live[c] += 1;
}

fn mimd_flush(s: &mut BatchMimdScratch) {
    for idx in 0..s.buf.pend.len() {
        let p = s.buf.pend[idx];
        s.queue.push(p.tick, p.slot as usize, p.mask);
    }
    s.buf.pend.clear();
    for cur in &mut s.buf.cursors {
        *cur = 0;
    }
}

fn mimd_kill(s: &mut BatchMimdScratch, c: usize, err: DlpError) {
    s.results[c] = Some(Err(err));
    s.dead |= 1u64 << c;
}

/// Execute one instruction for class `c` at node `rank` — the exact
/// scalar `step_inst`, against class-local machine, registers, and
/// channels, with wakeups buffered through the merge window.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn mimd_step_inst(
    s: &mut BatchMimdScratch,
    m: &mut Machine,
    c: usize,
    nc: usize,
    rank: usize,
    t: Tick,
    inst: MimdInst,
) -> Step {
    let coord = s.coords[rank];
    let n = rank * nc + c;
    let alu = m.params().ops.int_alu;
    let ra = s.nodes[n].regs[inst.ra as usize];
    let rb = s.nodes[n].regs[inst.rb as usize];
    let rd_old = s.nodes[n].regs[inst.rd as usize];
    let imm = inst.imm;
    let useful = inst.role == OpRole::Useful;

    macro_rules! count {
        ($useful:expr) => {
            if $useful {
                s.stats[c].useful_ops += 1;
            } else {
                s.stats[c].overhead_ops += 1;
            }
        };
    }

    match inst.op {
        MimdOp::Alu(op) | MimdOp::AluI(op) => {
            let rhs = if matches!(inst.op, MimdOp::AluI(_)) { Value::from_i64(imm) } else { rb };
            // `Sel rd, ra, rb`: rd = ra(predicate) ? rb : rd_old.
            let v = if matches!(op, Opcode::Sel) {
                trips_isa::exec::eval(Opcode::Sel, rhs, rd_old, ra)
            } else {
                let (_, needs_r, _) = op.ports();
                trips_isa::exec::eval(op, ra, if needs_r { rhs } else { Value::ZERO }, Value::ZERO)
            };
            s.nodes[n].regs[inst.rd as usize] = v;
            s.nodes[n].pc += 1;
            count!(useful && op.class() != OpClass::Mov);
            Step::Continue(t + op.latency(&m.params().ops))
        }
        MimdOp::Li => {
            s.nodes[n].regs[inst.rd as usize] = Value::from_u64(imm as u64);
            s.nodes[n].pc += 1;
            count!(false);
            Step::Continue(t + m.params().ops.mov)
        }
        MimdOp::Ld(space) => {
            let addr = ra.as_u64().wrapping_add(imm as u64);
            s.stats[c].loads += 1;
            let row = coord.row;
            let req = m.router.send_faulty(
                Endpoint::Node(coord),
                Endpoint::MemPort(row),
                t + alu,
                &mut m.fault,
            );
            let served = match space {
                MemSpace::Smc => {
                    s.stats[c].smc_accesses += 1;
                    m.smc[row as usize].access_faulty(addr, req, &mut m.fault)
                }
                MemSpace::L1 => {
                    s.stats[c].l1_accesses += 1;
                    let (t2, hit) = m.l1[row as usize].access_faulty(addr, req, &mut m.fault);
                    if !hit {
                        s.stats[c].l1_misses += 1;
                    }
                    t2
                }
            };
            let back = m.router.send_faulty(
                Endpoint::MemPort(row),
                Endpoint::Node(coord),
                served,
                &mut m.fault,
            );
            // The loaded value lands in the node's operand storage; a
            // parity flip there is re-latched from the network buffer.
            let back = m.fault.operand_write(back);
            s.stats[c].mem_stall_node_cycles += (back - t) / 2;
            s.nodes[n].regs[inst.rd as usize] = m.mem.read(addr);
            s.nodes[n].pc += 1;
            Step::Continue(back)
        }
        MimdOp::St(space) => {
            let addr = ra.as_u64().wrapping_add(imm as u64);
            s.stats[c].stores += 1;
            m.mem.write(addr, rb);
            let row = coord.row;
            let req = m.router.send_faulty(
                Endpoint::Node(coord),
                Endpoint::MemPort(row),
                t + alu,
                &mut m.fault,
            );
            let drained = match space {
                MemSpace::Smc => {
                    let t2 = m.stb[row as usize].push_faulty(addr, req, &mut m.fault);
                    m.smc[row as usize].store_faulty(addr, t2, &mut m.fault)
                }
                MemSpace::L1 => {
                    s.stats[c].l1_accesses += 1;
                    let (t2, hit) = m.l1[row as usize].access_faulty(addr, req, &mut m.fault);
                    if !hit {
                        s.stats[c].l1_misses += 1;
                    }
                    t2
                }
            };
            s.max_drain[c] = s.max_drain[c].max(drained);
            s.nodes[n].pc += 1;
            // Stores retire into the buffer; the node moves on.
            Step::Continue(t + alu)
        }
        MimdOp::Lut => {
            let idx = ra.as_u64().wrapping_add(imm as u64);
            s.stats[c].l0_accesses += 1;
            s.nodes[n].regs[inst.rd as usize] =
                m.l0_data.get(idx as usize).copied().unwrap_or(Value::ZERO);
            s.nodes[n].pc += 1;
            Step::Continue(t + m.params().mem.l0_latency)
        }
        MimdOp::Jmp => {
            s.nodes[n].pc = imm as usize;
            count!(false);
            Step::Continue(t + alu)
        }
        MimdOp::Bez | MimdOp::Bnz => {
            let taken =
                if matches!(inst.op, MimdOp::Bez) { !ra.is_true() } else { ra.is_true() };
            s.nodes[n].pc = if taken { imm as usize } else { s.nodes[n].pc + 1 };
            count!(false);
            Step::Continue(t + alu)
        }
        MimdOp::Send => {
            let n_ranks = s.ranks.len();
            let dst = (imm as usize).min(n_ranks.saturating_sub(1));
            let arrive = m.router.send_faulty(
                Endpoint::Node(coord),
                Endpoint::Node(s.send_coords[dst]),
                t + alu,
                &mut m.fault,
            );
            // The message parks in the receiver's operand buffer; a
            // flipped entry is re-latched before it becomes visible.
            let arrive = m.fault.operand_write(arrive);
            s.channels[c].get_mut(rank, dst).push_back((arrive, ra));
            if s.nodes[dst * nc + c].blocked_recv == Some(rank) {
                // The receiver blocked on an empty channel; this message
                // is the front, so it proceeds at the arrival tick.
                s.nodes[dst * nc + c].blocked_recv = None;
                mimd_buffer_wake(s, c, arrive, dst);
            }
            s.nodes[n].pc += 1;
            count!(false);
            Step::Continue(t + alu)
        }
        MimdOp::Recv => {
            let src = imm as usize;
            if src >= s.ranks.len() {
                // No such peer: block forever (reported as a deadlock).
                s.nodes[n].blocked_recv = Some(src);
                return Step::BlockedRecv;
            }
            let q = s.channels[c].get_mut(src, rank);
            match q.front().copied() {
                Some((arrive, v)) if arrive <= t => {
                    q.pop_front();
                    let _ = arrive;
                    s.nodes[n].regs[inst.rd as usize] = v;
                    s.nodes[n].pc += 1;
                    count!(false);
                    Step::Continue(t + alu)
                }
                Some((arrive, _)) => {
                    // In flight but not yet arrived: retry at arrival.
                    mimd_buffer_wake(s, c, arrive, rank);
                    Step::BlockedRecv
                }
                None => {
                    s.nodes[n].blocked_recv = Some(src);
                    Step::BlockedRecv
                }
            }
        }
        MimdOp::Halt => {
            s.nodes[n].halted = true;
            Step::Halted
        }
    }
}

/// Class `c` has drained every wakeup: latch its final result (or the
/// scalar deadlock/fault error).
fn mimd_finalize(s: &mut BatchMimdScratch, m: &mut Machine, c: usize, nc: usize) {
    // A fault escalated by the last step has no successor pop to
    // observe it — catch it before declaring the run complete.
    if let Some(fatal) = m.fault.fatal() {
        mimd_kill(s, c, fatal.to_error());
        return;
    }
    for rank in 0..s.ranks.len() {
        if !s.nodes[rank * nc + c].halted {
            let detail = format!("mimd deadlock: node rank {rank} never halted");
            mimd_kill(s, c, DlpError::MalformedProgram { detail });
            return;
        }
    }
    let mut stats = s.stats[c];
    stats.ticks = s.last_tick[c].max(s.max_drain[c]);
    let net = m.router.stats();
    stats.net_msgs = net.msgs;
    stats.net_hops = net.hops;
    stats.record_faults(m.fault.take_stats());
    s.results[c] = Some(Ok(stats));
    s.dead |= 1u64 << c;
}

/// Run the array in MIMD mode on every machine in `machines`
/// simultaneously, one lane class per machine, with the standard
/// register conventions (`r30` = rank, `r31` = participating count,
/// `r29` = `records`) — bit-identical per class to
/// [`Machine::run_mimd_in`](crate::Machine::run_mimd_in).
///
/// All machines must share one grid, timing model, and mechanism set.
///
/// # Panics
///
/// If `machines` is empty, longer than [`MAX_CLASSES`], or the machines
/// disagree on grid shape.
#[allow(clippy::too_many_lines)]
pub fn run_mimd_batch_in(
    machines: &mut [Machine],
    programs: &[MimdProgram],
    records: u64,
    arena: &mut EngineArena,
) -> Vec<Result<SimStats, DlpError>> {
    let nc = machines.len();
    assert!(
        (1..=MAX_CLASSES).contains(&nc),
        "batched dispatch takes 1..={MAX_CLASSES} lane classes, got {nc}"
    );
    assert!(
        machines.iter().all(|m| m.grid() == machines[0].grid()),
        "batched lane classes must share one grid shape"
    );
    // Static program checks, mirroring the scalar order (before any
    // machine state is touched).
    let check = {
        let m0 = &machines[0];
        if !m0.mechanisms().local_pc {
            Some(DlpError::Unsupported {
                what: "MIMD execution without local program counters".into(),
            })
        } else {
            let cap = m0.params().core.l0_inst_capacity;
            let mut err = None;
            'progs: for p in programs {
                if p.len() > cap {
                    err = Some(DlpError::CapacityExceeded {
                        resource: "L0 instruction-store entries",
                        needed: p.len(),
                        available: cap,
                    });
                    break;
                }
                for inst in p.insts() {
                    match inst.op {
                        MimdOp::Lut if !m0.mechanisms().l0_data_store => {
                            err = Some(DlpError::Unsupported {
                                what: "lut instruction without the L0 data store".into(),
                            });
                            break 'progs;
                        }
                        MimdOp::Ld(MemSpace::Smc) | MimdOp::St(MemSpace::Smc)
                            if !m0.mechanisms().smc =>
                        {
                            err = Some(DlpError::Unsupported {
                                what: "SMC memory access without the SMC mechanism".into(),
                            });
                            break 'progs;
                        }
                        _ => {}
                    }
                }
            }
            err
        }
    };
    if let Some(e) = check {
        return (0..nc).map(|_| Err(e.clone())).collect();
    }

    let s = &mut arena.batch_mimd;
    s.stats.clear();
    for m in machines.iter_mut() {
        s.stats.push(m.begin_run());
    }
    let grid = machines[0].grid();
    let n = programs.len().min(grid.nodes());
    s.ranks.clear();
    s.ranks.extend((0..n).filter(|&i| !programs[i].is_empty()));
    if s.ranks.is_empty() {
        return s.stats.iter().map(|&st| Ok(st)).collect();
    }
    let n_ranks = s.ranks.len();
    let n_active = programs.iter().filter(|p| !p.is_empty()).count() as u64;

    // Setup block: broadcast programs into the L0 instruction stores.
    let longest = programs.iter().map(MimdProgram::len).max().unwrap_or(0);
    let mut start = Vec::with_capacity(nc);
    for (c, m) in machines.iter().enumerate() {
        start.push(s.stats[c].ticks + m.fetch_ticks(longest));
        s.stats[c].blocks_fetched = 1;
    }

    s.nodes.clear();
    s.nodes.resize_with(n_ranks * nc, NodeState::new);
    for rank in 0..n_ranks {
        for c in 0..nc {
            let st = &mut s.nodes[rank * nc + c];
            st.regs[REG_NODE_ID as usize] = Value::from_u64(rank as u64);
            st.regs[REG_NODE_COUNT as usize] = Value::from_u64(n_active);
            st.regs[REG_RECORDS as usize] = Value::from_u64(records);
            s.stats[c].iterations = s.stats[c].iterations.max(records);
        }
    }
    s.coords.clear();
    for &i in &s.ranks {
        s.coords.push(grid.coord(i));
    }
    s.send_coords.clear();
    for d in 0..n_ranks {
        s.send_coords.push(grid.coord_of_rank(d, n_ranks));
    }

    s.channels.clear();
    s.channels.resize_with(nc, Channels::default);
    for ch in &mut s.channels {
        ch.reset(n_ranks);
    }
    s.queue.clear();
    s.buf.reset(nc);
    s.steps.clear();
    s.steps.resize(nc, 0);
    s.last_tick.clear();
    s.max_drain.clear();
    s.live.clear();
    s.live.resize(nc, 0);
    s.results.clear();
    s.results.resize(nc, None);
    s.dead = 0;
    for &st in &start {
        s.last_tick.push(st);
        s.max_drain.push(st);
    }
    for rank in 0..n_ranks {
        for c in 0..nc {
            mimd_buffer_wake(s, c, start[c], rank);
        }
    }
    mimd_flush(s);

    // The step budget follows from the watchdog: with every
    // instruction advancing its node's tick by at least one cycle, a
    // rank can be popped at most once per distinct tick in
    // `0..=watchdog_ticks`. Exceeding it means a zero-latency livelock
    // the tick check alone would never catch.
    let budget: Vec<u64> = machines
        .iter()
        .map(|m| (n_ranks as u64).saturating_mul(m.watchdog_ticks.saturating_add(1)))
        .collect();

    while let Some((t, rank, mask)) = s.queue.pop() {
        let alive = mask & !s.dead;
        let mut bits = alive;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let m = &mut machines[c];
            if t > m.watchdog_ticks || s.steps[c] > budget[c] {
                let context = format!(
                    "mimd rank {rank} at pc {} ({} steps, budget {} = {n_ranks} ranks x (watchdog {} + 1))",
                    s.nodes[rank * nc + c].pc,
                    s.steps[c],
                    budget[c],
                    m.watchdog_ticks
                );
                mimd_kill(s, c, DlpError::Watchdog { ticks: t, context });
                continue;
            }
            if let Some(fatal) = m.fault.fatal() {
                mimd_kill(s, c, fatal.to_error());
                continue;
            }
            s.steps[c] += 1;
            if s.nodes[rank * nc + c].halted {
                continue;
            }
            let pc = s.nodes[rank * nc + c].pc;
            let prog = &programs[s.ranks[rank]];
            if pc >= prog.len() {
                let detail = format!("mimd node rank {rank} ran off the end of its program");
                mimd_kill(s, c, DlpError::MalformedProgram { detail });
                continue;
            }
            let inst = prog.insts()[pc];
            s.stats[c].mimd_fetches += 1;
            s.last_tick[c] = s.last_tick[c].max(t);

            match mimd_step_inst(s, m, c, nc, rank, t, inst) {
                Step::Continue(next_t) => {
                    s.last_tick[c] = s.last_tick[c].max(next_t);
                    mimd_buffer_wake(s, c, next_t, rank);
                }
                Step::Halted => {}
                Step::BlockedRecv => {}
            }
        }
        mimd_flush(s);

        // Consume the wakeup; classes that drained finalize.
        let mut bits = alive & !s.dead;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            s.live[c] -= 1;
            if s.live[c] == 0 {
                mimd_finalize(s, &mut machines[c], c, nc);
            }
        }
    }

    s.results
        .iter_mut()
        .map(|r| {
            r.take().unwrap_or_else(|| {
                Err(DlpError::Internal {
                    detail: "batched mimd engine left a lane class unresolved".into(),
                })
            })
        })
        .collect()
}
