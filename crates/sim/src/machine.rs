//! Shared machine state: grid, memory system, register file, L0 stores.

use dlp_common::{DlpError, FaultInjector, FaultPlan, GridShape, SimStats, Tick, TimingParams, Value};
use trips_mem::{DmaEngine, L1Cache, MainMemory, SmcBank, StoreBuffer};
use trips_noc::MeshRouter;

use crate::MechanismSet;

/// The simulated machine: the ALU array plus its memory system.
///
/// A `Machine` persists across kernel launches, so an experiment driver can
/// stage data ([`Machine::stage_smc`]), preload lookup tables
/// ([`Machine::load_l0_table`]), seed registers, and then run one or more
/// kernels, accumulating setup costs into the next run's statistics exactly
/// as the paper's setup blocks do.
#[derive(Debug)]
pub struct Machine {
    grid: GridShape,
    params: TimingParams,
    mech: MechanismSet,
    pub(crate) router: MeshRouter,
    pub(crate) mem: MainMemory,
    pub(crate) smc: Vec<SmcBank>,
    pub(crate) l1: Vec<L1Cache>,
    pub(crate) stb: Vec<StoreBuffer>,
    /// L0 data-store contents (identical at every node; capacity-checked).
    pub(crate) l0_data: Vec<Value>,
    /// Architectural register file (bank of `reg % banks`).
    pub(crate) regs: Vec<Value>,
    /// Setup cost (DMA staging, table broadcast) charged to the next run.
    pub(crate) setup_ticks: Tick,
    /// Simulated-time limit per run (deadlock/livelock guard).
    pub(crate) watchdog_ticks: Tick,
    /// Transient-fault state; [`FaultInjector::disabled`] by default, so
    /// the faulty hook paths are exact no-ops.
    pub(crate) fault: FaultInjector,
}

impl Machine {
    /// Number of architectural registers modeled (large enough for the
    /// constant pools of the constant-heavy kernels; bank pressure is what
    /// the model charges for, not register count).
    pub const NUM_REGS: usize = 512;

    /// Build a machine.
    ///
    /// # Panics
    ///
    /// Panics if `mech` is not a coherent combination (see
    /// [`MechanismSet::is_coherent`]) — constructing an impossible machine
    /// is a driver bug.
    #[must_use]
    pub fn new(grid: GridShape, params: TimingParams, mech: MechanismSet) -> Self {
        assert!(mech.is_coherent(), "incoherent mechanism set {mech}");
        let rows = grid.rows() as usize;
        let l1_bank_bytes = (params.mem.l1_bytes / rows).max(params.mem.l1_line_bytes);
        Machine {
            grid,
            params,
            mech,
            router: MeshRouter::new(grid, params.net),
            mem: MainMemory::new(),
            smc: (0..rows).map(|_| SmcBank::new(&params.mem)).collect(),
            l1: (0..rows).map(|_| L1Cache::new(l1_bank_bytes, &params.mem)).collect(),
            stb: (0..rows).map(|_| StoreBuffer::new(&params.mem)).collect(),
            l0_data: Vec::new(),
            regs: vec![Value::ZERO; Self::NUM_REGS],
            setup_ticks: 0,
            watchdog_ticks: crate::WATCHDOG_TICKS,
            fault: FaultInjector::disabled(),
        }
    }

    /// Lower the per-run watchdog (simulated ticks). A run exceeding the
    /// limit fails with [`DlpError::Watchdog`] instead of spinning — useful
    /// when driving untrusted or generated programs.
    pub fn set_watchdog(&mut self, ticks: Tick) {
        self.watchdog_ticks = ticks.max(1);
    }

    /// Install a transient-fault plan, seeded from `run_seed` (normally the
    /// experiment seed). Affects every subsequent stage/run on this machine
    /// until replaced; an all-zero plan restores the exact fault-free
    /// behavior (the injector disables itself and draws no randomness).
    pub fn install_fault_plan(&mut self, plan: FaultPlan, run_seed: u64) {
        self.fault = plan.injector(run_seed);
    }

    /// The fault counters accumulated since the plan was installed
    /// (staging faults included — they are charged to setup time).
    #[must_use]
    pub fn fault_stats(&self) -> dlp_common::FaultStats {
        self.fault.stats()
    }

    /// The array shape.
    #[must_use]
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// The timing parameters.
    #[must_use]
    pub fn params(&self) -> &TimingParams {
        &self.params
    }

    /// The enabled mechanisms.
    #[must_use]
    pub fn mechanisms(&self) -> MechanismSet {
        self.mech
    }

    /// Mutable access to main memory (for staging workloads and reading
    /// results).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// Read-only access to main memory.
    #[must_use]
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Read architectural register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn reg(&self, r: u16) -> Value {
        self.regs[r as usize]
    }

    /// Write architectural register `r` (driver-side kernel setup).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn set_reg(&mut self, r: u16, v: Value) {
        self.regs[r as usize] = v;
    }

    /// Stage a word range into the software-managed cache via the DMA
    /// engines, charging the transfer to the next run's setup time.
    ///
    /// Records are interleaved across the per-row banks by the stream
    /// scheduler, so the effective window is the aggregate capacity of all
    /// banks; a dataset larger than that is only resident in its prefix and
    /// the remainder falls back to DRAM on access (the paper's `lu`
    /// situation).
    ///
    /// # Errors
    ///
    /// Returns [`DlpError::Unsupported`] when the SMC mechanism is disabled.
    pub fn stage_smc(&mut self, range: std::ops::Range<u64>) -> Result<(), DlpError> {
        if !self.mech.smc {
            return Err(DlpError::Unsupported {
                what: "SMC staging on a machine without the SMC mechanism".into(),
            });
        }
        let total_words: u64 = self.smc.iter().map(SmcBank::capacity_words).sum();
        let len = (range.end - range.start).min(total_words);
        let clamped = range.start..range.start + len;
        // All banks see the same aggregate window; per-bank bandwidth is
        // modeled independently, partitioning is the stream scheduler's job.
        for bank in &mut self.smc {
            bank.set_resident_raw(clamped.clone());
        }
        let dma = DmaEngine::new(&self.params.mem);
        // The per-row engines stream their shares concurrently. A DMA
        // stall is absorbed here: the launch throttle (setup_ticks) simply
        // starts the kernel later.
        let share = len.div_ceil(self.smc.len() as u64);
        self.setup_ticks += dma.transfer_done_faulty(share, 0, &mut self.fault);
        Ok(())
    }

    /// Charge the DMA cost of writing `words` of results back from the SMC
    /// (typically called after a run when the experiment accounts for
    /// write-back explicitly).
    pub fn charge_smc_writeback(&mut self, words: u64) {
        let dma = DmaEngine::new(&self.params.mem);
        let share = words.div_ceil(self.smc.len() as u64);
        self.setup_ticks += dma.transfer_done_faulty(share, 0, &mut self.fault);
    }

    /// Load (replacing) the L0 data-store contents broadcast to every node,
    /// charging the broadcast to setup time.
    ///
    /// Capacity accounting follows the paper's §4.4: the 2 KB store holds
    /// the narrow entries the encryption and skinning kernels index (byte
    /// to word sized), so capacity is checked in *entries* against the byte
    /// budget.
    ///
    /// # Errors
    ///
    /// [`DlpError::Unsupported`] when the L0 data store is disabled;
    /// [`DlpError::CapacityExceeded`] when the table does not fit.
    pub fn load_l0_table(&mut self, entries: &[Value]) -> Result<(), DlpError> {
        if !self.mech.l0_data_store {
            return Err(DlpError::Unsupported {
                what: "L0 data store is not configured on this machine".into(),
            });
        }
        let cap = self.params.mem.l0_data_bytes;
        if entries.len() > cap {
            return Err(DlpError::CapacityExceeded {
                resource: "L0 data-store entries",
                needed: entries.len(),
                available: cap,
            });
        }
        self.l0_data = entries.to_vec();
        // Broadcast down the row channels: entries stream at channel
        // bandwidth, pipelined across rows.
        let words = entries.len() as u64;
        let per_cycle = u64::from(self.params.mem.smc_channel_words_per_cycle.max(1));
        self.setup_ticks += self.params.mem.dram_latency + words.div_ceil(per_cycle) * 2;
        Ok(())
    }

    /// Reset per-run timing state (bank queues, router occupancy, caches)
    /// while keeping memory contents, registers, staged SMC windows and L0
    /// tables.
    pub(crate) fn begin_run(&mut self) -> SimStats {
        self.router.reset();
        for b in &mut self.smc {
            b.reset_timing();
        }
        for c in &mut self.l1 {
            c.reset();
        }
        for s in &mut self.stb {
            s.reset();
        }
        let mut stats = SimStats::new();
        stats.ticks = self.setup_ticks;
        self.setup_ticks = 0;
        stats
    }

    /// Fetch *throughput* cost (ticks of fetch-engine occupancy) for
    /// streaming `insts` instructions onto the array. The one-time map
    /// latency is `TimingParams.fetch.map_overhead`, charged once per
    /// run by the engine.
    pub(crate) fn fetch_ticks(&self, insts: usize) -> Tick {
        let per_cycle = u64::from(self.params.fetch.insts_per_cycle.max(1));
        (insts as u64).div_ceil(per_cycle) * 2
    }

    /// Baseline (ILP-mode) fetch throughput for one kernel instance: the
    /// kernel streams as a *sequence* of hyperblocks bounded by the
    /// baseline per-block budget, with a small dispatch bubble between
    /// hyperblocks. This is how the block-size limit of ILP compilation
    /// (§5.2) shows up in the model without simulating cross-block register
    /// traffic.
    pub(crate) fn fetch_ticks_baseline(&self, insts: usize) -> Tick {
        let per_cycle = u64::from(self.params.fetch.insts_per_cycle.max(1));
        let chunk = (self.params.core.baseline_slots_per_node * self.grid.nodes()).max(1);
        let blocks = (insts.max(1)).div_ceil(chunk) as u64;
        (insts as u64).div_ceil(per_cycle) * 2 + (blocks - 1) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_common::{GridShape, TimingParams};

    fn machine(mech: MechanismSet) -> Machine {
        Machine::new(GridShape::new(8, 8), TimingParams::default(), mech)
    }

    #[test]
    fn staging_requires_smc() {
        let mut m = machine(MechanismSet::baseline());
        assert!(m.stage_smc(0..100).is_err());
        let mut m = machine(MechanismSet::simd());
        assert!(m.stage_smc(0..100).is_ok());
        assert!(m.setup_ticks > 0);
    }

    #[test]
    fn l0_requires_mechanism_and_capacity() {
        let mut m = machine(MechanismSet::simd());
        assert!(m.load_l0_table(&[Value::ZERO; 16]).is_err());

        let mut m = machine(MechanismSet::simd_operand_l0());
        assert!(m.load_l0_table(&[Value::ZERO; 16]).is_ok());
        // Default capacity: 2048 entries.
        assert!(m.load_l0_table(&vec![Value::ZERO; 4096]).is_err());
    }

    #[test]
    fn registers_read_back() {
        let mut m = machine(MechanismSet::baseline());
        m.set_reg(7, Value::from_u64(99));
        assert_eq!(m.reg(7).as_u64(), 99);
    }

    #[test]
    fn writeback_charge_accumulates_setup() {
        let mut m = machine(MechanismSet::simd());
        m.charge_smc_writeback(10_000);
        let with_writeback = m.begin_run().ticks;
        assert!(with_writeback > 0, "write-back DMA must cost time");
        let mut m2 = machine(MechanismSet::simd());
        m2.charge_smc_writeback(100);
        assert!(m2.begin_run().ticks < with_writeback, "cost scales with words");
    }

    #[test]
    fn begin_run_consumes_setup() {
        let mut m = machine(MechanismSet::simd());
        m.stage_smc(0..1024).unwrap();
        let s = m.begin_run();
        assert!(s.ticks > 0);
        let s2 = m.begin_run();
        assert_eq!(s2.ticks, 0);
    }

    #[test]
    #[should_panic(expected = "incoherent")]
    fn incoherent_mechanisms_panic() {
        let bad = MechanismSet { inst_revitalization: true, local_pc: true, ..Default::default() };
        let _ = machine(bad);
    }

    #[test]
    fn fetch_ticks_scale_with_block_size() {
        let m = machine(MechanismSet::baseline());
        let small = m.fetch_ticks(16);
        let large = m.fetch_ticks(512);
        assert!(large > small);
    }
}
