//! The composable mechanism flags (§4's universal mechanisms).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which of the paper's universal mechanisms are enabled on the machine.
///
/// The paper's Table 5 configurations are specific combinations of these
/// flags (constructed by `dlp-core`); up to 20 combinations are meaningful,
/// and the flags here can express all of them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MechanismSet {
    /// Software-managed streamed memory: SMC banks, DMA staging, row
    /// streaming channels and wide LMW loads (§4.2). When off, all memory
    /// traffic goes through the hardware-managed L1.
    pub smc: bool,
    /// Instruction revitalization: loop iterations reuse the mapped block
    /// instead of refetching (§4.3). Mutually exclusive with `local_pc`.
    pub inst_revitalization: bool,
    /// Operand revitalization: reservation-station operands marked
    /// persistent survive revitalization, so constants are delivered once
    /// per kernel rather than once per iteration (§4.4).
    pub operand_revitalization: bool,
    /// Software-managed L0 data store at each ALU for indexed constants
    /// (§4.4).
    pub l0_data_store: bool,
    /// Local program counters + L0 instruction stores: fine-grain MIMD
    /// execution (§4.3). Mutually exclusive with `inst_revitalization`.
    pub local_pc: bool,
}

impl MechanismSet {
    /// The unmodified ILP-oriented TRIPS baseline: no DLP mechanisms.
    #[must_use]
    pub fn baseline() -> Self {
        MechanismSet::default()
    }

    /// SMC + instruction revitalization (the paper's **S** machine).
    #[must_use]
    pub fn simd() -> Self {
        MechanismSet { smc: true, inst_revitalization: true, ..MechanismSet::default() }
    }

    /// **S-O**: S plus operand revitalization.
    #[must_use]
    pub fn simd_operand() -> Self {
        MechanismSet { operand_revitalization: true, ..MechanismSet::simd() }
    }

    /// **S-O-D**: S-O plus the L0 data store.
    #[must_use]
    pub fn simd_operand_l0() -> Self {
        MechanismSet { l0_data_store: true, ..MechanismSet::simd_operand() }
    }

    /// **M**: SMC + local program counters (MIMD).
    #[must_use]
    pub fn mimd() -> Self {
        MechanismSet { smc: true, local_pc: true, ..MechanismSet::default() }
    }

    /// **M-D**: M plus the L0 data store.
    #[must_use]
    pub fn mimd_l0() -> Self {
        MechanismSet { l0_data_store: true, ..MechanismSet::mimd() }
    }

    /// Every coherent mechanism combination — the paper's §5.3 notes the
    /// mechanisms "can be combined in different ways … to produce as many
    /// as 20 different run-time machine configurations"; with the
    /// constraints encoded in [`MechanismSet::is_coherent`] this
    /// enumeration yields the full space (16 machines: 2 SMC × 2 L0-data ×
    /// {plain, inst-revit, inst+operand-revit, local-PC}).
    #[must_use]
    pub fn all_coherent() -> Vec<MechanismSet> {
        let mut out = Vec::new();
        for smc in [false, true] {
            for l0 in [false, true] {
                for (ir, or, pc) in
                    [(false, false, false), (true, false, false), (true, true, false), (false, false, true)]
                {
                    let m = MechanismSet {
                        smc,
                        inst_revitalization: ir,
                        operand_revitalization: or,
                        l0_data_store: l0,
                        local_pc: pc,
                    };
                    debug_assert!(m.is_coherent());
                    out.push(m);
                }
            }
        }
        out
    }

    /// Whether the combination is physically meaningful.
    ///
    /// Instruction revitalization sequences the whole array from the block
    /// control unit, while local PCs sequence each node independently; a
    /// machine cannot do both at once. Likewise operand revitalization only
    /// means something under instruction revitalization.
    #[must_use]
    pub fn is_coherent(self) -> bool {
        if self.inst_revitalization && self.local_pc {
            return false;
        }
        if self.operand_revitalization && !self.inst_revitalization {
            return false;
        }
        true
    }
}

impl fmt::Display for MechanismSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.smc {
            parts.push("smc");
        }
        if self.inst_revitalization {
            parts.push("inst-revit");
        }
        if self.operand_revitalization {
            parts.push("op-revit");
        }
        if self.l0_data_store {
            parts.push("l0-data");
        }
        if self.local_pc {
            parts.push("local-pc");
        }
        if parts.is_empty() {
            write!(f, "baseline")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configurations_are_coherent() {
        for m in [
            MechanismSet::baseline(),
            MechanismSet::simd(),
            MechanismSet::simd_operand(),
            MechanismSet::simd_operand_l0(),
            MechanismSet::mimd(),
            MechanismSet::mimd_l0(),
        ] {
            assert!(m.is_coherent(), "{m} should be coherent");
        }
    }

    #[test]
    fn contradictory_combinations_rejected() {
        let both = MechanismSet { inst_revitalization: true, local_pc: true, ..Default::default() };
        assert!(!both.is_coherent());
        let orphan_op =
            MechanismSet { operand_revitalization: true, ..Default::default() };
        assert!(!orphan_op.is_coherent());
    }

    #[test]
    fn configuration_space_is_complete_and_coherent() {
        let all = MechanismSet::all_coherent();
        assert_eq!(all.len(), 16);
        let unique: std::collections::HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len(), 16, "no duplicates");
        assert!(all.iter().all(|m| m.is_coherent()));
        // The named configurations are all members of the space.
        for named in [
            MechanismSet::baseline(),
            MechanismSet::simd(),
            MechanismSet::simd_operand(),
            MechanismSet::simd_operand_l0(),
            MechanismSet::mimd(),
            MechanismSet::mimd_l0(),
        ] {
            assert!(unique.contains(&named), "{named} missing from the space");
        }
    }

    #[test]
    fn display_names_mechanisms() {
        assert_eq!(MechanismSet::baseline().to_string(), "baseline");
        let s = MechanismSet::simd_operand_l0().to_string();
        assert!(s.contains("smc") && s.contains("op-revit") && s.contains("l0-data"));
    }
}
