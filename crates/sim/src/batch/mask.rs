//! Branch-free, word-at-a-time passes over the lane-class stride.
//!
//! Every function here takes per-class columns (`state[.. * nc + c]`,
//! class innermost) plus a `u64` lane mask and updates the masked
//! classes with bitwise select — no per-lane `if`, no early `continue`
//! — so the autovectorizer can emit SIMD over the class dimension.
//! The loops are tagged with `detlint: simd-loop-begin`/`-end` markers:
//! detlint forbids per-lane `continue` inside them, and
//! `cargo xtask asmcheck` greps the release assembly of these
//! `#[inline(never)]` symbols for vector instructions.
//!
//! Bit-identity note: each pass writes class `c`'s column from class
//! `c`'s inputs only, exactly as the scalar per-class loop it replaced;
//! masked-off lanes are preserved via select rather than skipped via
//! control flow, which cannot change any per-class value.

use dlp_common::{Tick, Value};
use trips_isa::Opcode;

/// Bit `c` of `mask` expanded to an all-ones/all-zero select word.
#[inline(always)]
fn lane_word(mask: u64, c: usize) -> u64 {
    ((mask >> c) & 1).wrapping_neg()
}

/// Masked copy: `dst[c] = src[c]` for masked classes, else unchanged —
/// the operand-latch / register-writeback pass.
#[inline(never)]
pub(crate) fn simd_latch_lanes(dst: &mut [Value], src: &[Value], mask: u64) {
    let n = dst.len().min(src.len());
    // detlint: simd-loop-begin
    for c in 0..n {
        let w = lane_word(mask, c);
        dst[c] = Value::from_bits((src[c].bits() & w) | (dst[c].bits() & !w));
    }
    // detlint: simd-loop-end
}

/// Masked operand gather: `out[c] = vals[c]` where `present` has bit
/// `c`, else the uniform `default` (an immediate or zero) — the operand
/// delivery pass feeding [`simd_eval_lanes`].
#[inline(never)]
pub(crate) fn simd_select_lanes(out: &mut [Value], vals: &[Value], present: u64, default: Value) {
    let n = out.len().min(vals.len());
    // detlint: simd-loop-begin
    for c in 0..n {
        let w = lane_word(present, c);
        out[c] = Value::from_bits((vals[c].bits() & w) | (default.bits() & !w));
    }
    // detlint: simd-loop-end
}

/// Masked `+= 1` over a `u32` column (executed counts, program
/// counters).
#[inline(never)]
pub(crate) fn simd_add_one_u32(col: &mut [u32], mask: u64) {
    // detlint: simd-loop-begin
    for c in 0..col.len() {
        col[c] = col[c].wrapping_add(((mask >> c) & 1) as u32);
    }
    // detlint: simd-loop-end
}

/// Masked `-= 1` over a `u32` column (outstanding-event counts).
#[inline(never)]
pub(crate) fn simd_sub_one_u32(col: &mut [u32], mask: u64) {
    // detlint: simd-loop-begin
    for c in 0..col.len() {
        col[c] = col[c].wrapping_sub(((mask >> c) & 1) as u32);
    }
    // detlint: simd-loop-end
}

/// Masked `+= 1` over a `u64` column — the stat-accumulation pass
/// (useful/overhead op counts, fetches, step budgets).
#[inline(never)]
pub(crate) fn simd_add_one_u64(col: &mut [u64], mask: u64) {
    // detlint: simd-loop-begin
    for c in 0..col.len() {
        col[c] += (mask >> c) & 1;
    }
    // detlint: simd-loop-end
}

/// Masked `col[c] = max(col[c], t)` over a tick column (frame/run
/// last-tick tracking).
#[inline(never)]
pub(crate) fn simd_max_tick(col: &mut [Tick], t: Tick, mask: u64) {
    // detlint: simd-loop-begin
    for c in 0..col.len() {
        let w = lane_word(mask, c);
        let m = col[c].max(t);
        col[c] = (m & w) | (col[c] & !w);
    }
    // detlint: simd-loop-end
}

/// Classes whose `col[c]` exceeds `bound[c]`, as a mask word (step
/// budget screening — the slow path walks only the returned bits).
#[inline(never)]
pub(crate) fn simd_over_mask(col: &[u64], bound: &[u64], nc: usize) -> u64 {
    let n = nc.min(col.len()).min(bound.len());
    let mut over = 0u64;
    // detlint: simd-loop-begin
    for c in 0..n {
        over |= u64::from(col[c] > bound[c]) << c;
    }
    // detlint: simd-loop-end
    over
}

/// Evaluate one ALU opcode across every lane: `out[c] = eval(op, l[c],
/// r[c], p[c])`.
///
/// The opcode match is hoisted out of the lane loop so each arm is a
/// single branch-free pass the autovectorizer can handle. Every arm
/// restates [`trips_isa::exec::eval`]'s expression *verbatim* — the
/// `eval_lanes_matches_scalar_eval` test pins the equivalence per
/// opcode — and opcodes whose semantics do not vectorize profitably
/// (division, floating point) fall back to the scalar `eval` per lane,
/// which is bit-identical by construction.
///
/// # Panics
///
/// Panics (in the scalar fallback) when called with an engine-evaluated
/// opcode (`MovI`/`Iter`/`Nop`/memory ops) — callers dispatch those
/// before reaching the ALU pass, exactly like the scalar engines.
#[inline(never)]
#[allow(clippy::many_single_char_names)]
pub(crate) fn simd_eval_lanes(op: Opcode, l: &[Value], r: &[Value], p: &[Value], out: &mut [Value]) {
    let n = out.len().min(l.len()).min(r.len()).min(p.len());
    macro_rules! map2 {
        (|$a:ident, $b:ident| $e:expr) => {{
            // detlint: simd-loop-begin
            for c in 0..n {
                let $a = l[c];
                let $b = r[c];
                out[c] = $e;
            }
            // detlint: simd-loop-end
        }};
    }
    macro_rules! map1 {
        (|$a:ident| $e:expr) => {{
            // detlint: simd-loop-begin
            for c in 0..n {
                let $a = l[c];
                out[c] = $e;
            }
            // detlint: simd-loop-end
        }};
    }
    use Opcode::*;
    match op {
        Add => map2!(|a, b| Value::from_u64(a.as_u64().wrapping_add(b.as_u64()))),
        Sub => map2!(|a, b| Value::from_u64(a.as_u64().wrapping_sub(b.as_u64()))),
        Mul => map2!(|a, b| Value::from_u64(a.as_u64().wrapping_mul(b.as_u64()))),
        Add32 => map2!(|a, b| Value::from_u32(a.as_u32().wrapping_add(b.as_u32()))),
        Sub32 => map2!(|a, b| Value::from_u32(a.as_u32().wrapping_sub(b.as_u32()))),
        Mul32 => map2!(|a, b| Value::from_u32(a.as_u32().wrapping_mul(b.as_u32()))),
        RotL32 => map2!(|a, b| Value::from_u32(a.as_u32().rotate_left(b.as_u32() % 32))),
        RotR32 => map2!(|a, b| Value::from_u32(a.as_u32().rotate_right(b.as_u32() % 32))),
        And => map2!(|a, b| Value::from_u64(a.as_u64() & b.as_u64())),
        Or => map2!(|a, b| Value::from_u64(a.as_u64() | b.as_u64())),
        Xor => map2!(|a, b| Value::from_u64(a.as_u64() ^ b.as_u64())),
        Not => map1!(|a| Value::from_u64(!a.as_u64())),
        Shl => map2!(|a, b| Value::from_u64(a.as_u64() << (b.as_u64() & 63))),
        Shr => map2!(|a, b| Value::from_u64(a.as_u64() >> (b.as_u64() & 63))),
        Sra => map2!(|a, b| Value::from_i64(a.as_i64() >> (b.as_u64() & 63))),
        Teq => map2!(|a, b| Value::from_u64(u64::from(a.as_u64() == b.as_u64()))),
        Tne => map2!(|a, b| Value::from_u64(u64::from(a.as_u64() != b.as_u64()))),
        Tlt => map2!(|a, b| Value::from_u64(u64::from(a.as_i64() < b.as_i64()))),
        Tle => map2!(|a, b| Value::from_u64(u64::from(a.as_i64() <= b.as_i64()))),
        Tgt => map2!(|a, b| Value::from_u64(u64::from(a.as_i64() > b.as_i64()))),
        Tge => map2!(|a, b| Value::from_u64(u64::from(a.as_i64() >= b.as_i64()))),
        Tltu => map2!(|a, b| Value::from_u64(u64::from(a.as_u64() < b.as_u64()))),
        Tgeu => map2!(|a, b| Value::from_u64(u64::from(a.as_u64() >= b.as_u64()))),
        Mov => map1!(|a| a),
        Sel => {
            // detlint: simd-loop-begin
            for c in 0..n {
                let w = u64::from(p[c].is_true()).wrapping_neg();
                out[c] = Value::from_bits((l[c].bits() & w) | (r[c].bits() & !w));
            }
            // detlint: simd-loop-end
        }
        _ => {
            // Division, floating point, conversions: scalar `eval` per
            // lane (bit-identical by construction; these arms carry
            // hardware-level corner cases not worth restating).
            for c in 0..n {
                out[c] = trips_isa::exec::eval(op, l[c], r[c], p[c]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interesting corners for every integer/float reinterpretation the
    /// ISA uses.
    const SAMPLES: &[u64] = &[
        0,
        1,
        2,
        3,
        63,
        64,
        65,
        0x7F,
        0x80,
        0xFFFF_FFFF,
        0x8000_0000,
        0x7FFF_FFFF,
        0x1_0000_0000,
        0xAAAA_5555_AAAA_5555,
        0x8000_0000_0000_0000,
        0x7FFF_FFFF_FFFF_FFFF,
        u64::MAX,
        0x3F80_0000,        // 1.0f32
        0xBF80_0000,        // -1.0f32
        0x7FC0_0000,        // f32 NaN
        0x7F80_0000,        // f32 +inf
        0x4F00_0000,        // 2^31 as f32
        0xCF00_0000,        // -2^31 as f32
    ];

    #[test]
    fn eval_lanes_matches_scalar_eval() {
        use Opcode::*;
        let all = [
            Add, Sub, Mul, Div, Rem, Add32, Sub32, Mul32, RotL32, RotR32, And, Or, Xor, Not, Shl,
            Shr, Sra, Teq, Tne, Tlt, Tle, Tgt, Tge, Tltu, Tgeu, FAdd, FSub, FMul, FDiv, FSqrt,
            FMin, FMax, FNeg, FAbs, FFloor, FTeq, FTlt, FTle, I2F, F2I, Mov, Sel,
        ];
        // Lanes sweep (l, r, p) through rotations of the sample corners
        // so every pairwise combination appears in some lane.
        let n = SAMPLES.len();
        let l: Vec<Value> = (0..n * n).map(|i| Value::from_bits(SAMPLES[i % n])).collect();
        let r: Vec<Value> = (0..n * n).map(|i| Value::from_bits(SAMPLES[i / n])).collect();
        let p: Vec<Value> = (0..n * n).map(|i| Value::from_bits(SAMPLES[(i + 7) % n])).collect();
        let mut out = vec![Value::ZERO; n * n];
        for op in all {
            simd_eval_lanes(op, &l, &r, &p, &mut out);
            for c in 0..n * n {
                let want = trips_isa::exec::eval(op, l[c], r[c], p[c]);
                assert_eq!(
                    out[c].bits(),
                    want.bits(),
                    "{op:?} lane {c}: l={:#x} r={:#x} p={:#x}",
                    l[c].bits(),
                    r[c].bits(),
                    p[c].bits()
                );
            }
        }
    }

    #[test]
    fn masked_passes_touch_only_masked_lanes() {
        let mask = 0b1010_0110u64;
        let src: Vec<Value> = (0..8).map(|i| Value::from_u64(100 + i)).collect();
        let mut dst: Vec<Value> = (0..8).map(Value::from_u64).collect();
        simd_latch_lanes(&mut dst, &src, mask);
        for c in 0..8 {
            let want = if mask >> c & 1 != 0 { 100 + c as u64 } else { c as u64 };
            assert_eq!(dst[c].as_u64(), want, "lane {c}");
        }

        let mut counts = vec![10u32; 8];
        simd_add_one_u32(&mut counts, mask);
        simd_sub_one_u32(&mut counts, !mask);
        for c in 0..8 {
            let want = if mask >> c & 1 != 0 { 11 } else { 9 };
            assert_eq!(counts[c], want, "lane {c}");
        }

        let mut ticks = vec![5u64; 8];
        simd_max_tick(&mut ticks, 9, mask);
        for c in 0..8 {
            assert_eq!(ticks[c], if mask >> c & 1 != 0 { 9 } else { 5 }, "lane {c}");
        }

        let mut col = vec![0u64; 8];
        simd_add_one_u64(&mut col, mask);
        assert_eq!(col.iter().sum::<u64>(), mask.count_ones() as u64);

        let bound = vec![0u64; 8];
        assert_eq!(simd_over_mask(&col, &bound, 8), mask);

        let mut out = vec![Value::ZERO; 8];
        simd_select_lanes(&mut out, &src, mask, Value::from_u64(7));
        for c in 0..8 {
            let want = if mask >> c & 1 != 0 { 100 + c as u64 } else { 7 };
            assert_eq!(out[c].as_u64(), want, "lane {c}");
        }
    }
}
