//! Batched MIMD execution: the MIMD half of the lane-batched lockstep
//! engine (see the [`batch`](super) module docs for the determinism
//! argument and SoA layout).
//!
//! Node state is structure-of-arrays with the class index innermost:
//! registers are `[rank][reg][class]` strides (one contiguous row per
//! architectural register), program counters `[rank][class]`, halted
//! flags one `u64` mask per rank, and blocked-receive markers
//! `[rank][class]` with sentinels. When every acting class sits at the
//! same program counter and the instruction is a pure ALU/immediate op,
//! one word-at-a-time pass executes it for all of them.

use dlp_common::{DlpError, SimStats, Tick, Value};
use trips_isa::{
    MemSpace, MimdInst, MimdOp, MimdProgram, OpClass, OpRole, Opcode, REG_NODE_COUNT, REG_NODE_ID,
    REG_RECORDS,
};
use trips_noc::Endpoint;

use super::{mask, MergeBuf, MAX_CLASSES};
use crate::equeue::CalendarQueue;
use crate::mimd::{Channels, RankCoord, Step, MIMD_BUCKET_SHIFT};
use crate::{EngineArena, Machine};

/// Architectural registers per MIMD node (the scalar `NodeState` array).
const NUM_MIMD_REGS: usize = 32;
/// `blocked[rank*nc+c]` sentinel: not blocked on any receive.
const NOT_BLOCKED: u32 = u32::MAX;
/// `blocked[rank*nc+c]` sentinel: blocked on a nonexistent peer (the
/// scalar `Some(src)` with `src >= n_ranks` — no `Send` can ever match
/// it, so the class deadlocks exactly like the scalar run).
const BLOCKED_NO_PEER: u32 = u32::MAX - 1;

/// Recyclable storage for one batched MIMD run, owned by an
/// [`EngineArena`](crate::EngineArena).
pub(crate) struct BatchMimdScratch {
    /// Ready queue keyed by rank; the payload is the class mask.
    queue: CalendarQueue<usize, u64>,
    buf: MergeBuf,
    /// Per-class channel tables.
    channels: Vec<Channels>,
    /// Registers, `[rank][reg][class]` (class innermost).
    regs: Vec<Value>,
    /// Program counters, `[rank][class]`.
    pc: Vec<u32>,
    /// Halted classes, one mask per rank.
    halted: Vec<u64>,
    /// Blocked-receive source per `[rank][class]` ([`NOT_BLOCKED`],
    /// [`BLOCKED_NO_PEER`], or a rank).
    blocked: Vec<u32>,
    /// Participating node indices in rank order.
    ranks: Vec<usize>,
    coords: Vec<dlp_common::Coord>,
    send_coords: Vec<dlp_common::Coord>,
    // Per-class run state.
    steps: Vec<u64>,
    /// Step budgets per class (watchdog-derived livelock bound).
    budget: Vec<u64>,
    last_tick: Vec<Tick>,
    max_drain: Vec<Tick>,
    live: Vec<u64>,
    stats: Vec<SimStats>,
    /// Fetch counts accumulated by the lane-vectorized step pass,
    /// folded into `stats` at finalize (sums are order-independent).
    col_fetches: Vec<u64>,
    col_useful: Vec<u64>,
    col_overhead: Vec<u64>,
    // Operand/result lane buffers for the vectorized ALU pass.
    lane_a: Vec<Value>,
    lane_b: Vec<Value>,
    lane_d: Vec<Value>,
    lane_v: Vec<Value>,
    lane_z: Vec<Value>,
    results: Vec<Option<Result<SimStats, DlpError>>>,
    dead: u64,
}

impl Default for BatchMimdScratch {
    fn default() -> Self {
        BatchMimdScratch {
            queue: CalendarQueue::with_window_shift(crate::equeue::DEFAULT_WINDOW, MIMD_BUCKET_SHIFT),
            buf: MergeBuf::default(),
            channels: Vec::new(),
            regs: Vec::new(),
            pc: Vec::new(),
            halted: Vec::new(),
            blocked: Vec::new(),
            ranks: Vec::new(),
            coords: Vec::new(),
            send_coords: Vec::new(),
            steps: Vec::new(),
            budget: Vec::new(),
            last_tick: Vec::new(),
            max_drain: Vec::new(),
            live: Vec::new(),
            stats: Vec::new(),
            col_fetches: Vec::new(),
            col_useful: Vec::new(),
            col_overhead: Vec::new(),
            lane_a: Vec::new(),
            lane_b: Vec::new(),
            lane_d: Vec::new(),
            lane_v: Vec::new(),
            lane_z: Vec::new(),
            results: Vec::new(),
            dead: 0,
        }
    }
}

fn mimd_buffer_wake(s: &mut BatchMimdScratch, c: usize, tick: Tick, rank: usize) {
    let _ = s.buf.push(c, tick, rank as u32, 0, 0);
    s.live[c] += 1;
}

fn mimd_flush(s: &mut BatchMimdScratch) {
    for idx in 0..s.buf.pend.len() {
        let p = s.buf.pend[idx];
        s.queue.push(p.tick, p.slot as usize, p.mask);
    }
    s.buf.pend.clear();
    for cur in &mut s.buf.cursors {
        *cur = 0;
    }
}

fn mimd_kill(s: &mut BatchMimdScratch, c: usize, err: DlpError) {
    s.results[c] = Some(Err(err));
    s.dead |= 1u64 << c;
}

/// Execute one instruction for class `c` at node `rank` — the exact
/// scalar `step_inst`, against class-local machine, registers, and
/// channels, with wakeups buffered through the merge window.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn mimd_step_inst(
    s: &mut BatchMimdScratch,
    m: &mut Machine,
    c: usize,
    nc: usize,
    rank: usize,
    t: Tick,
    inst: MimdInst,
) -> Step {
    let coord = s.coords[rank];
    let rbase = rank * NUM_MIMD_REGS;
    let alu = m.params().ops.int_alu;
    let ra = s.regs[(rbase + inst.ra as usize) * nc + c];
    let rb = s.regs[(rbase + inst.rb as usize) * nc + c];
    let rd_old = s.regs[(rbase + inst.rd as usize) * nc + c];
    let imm = inst.imm;
    let useful = inst.role == OpRole::Useful;

    macro_rules! count {
        ($useful:expr) => {
            if $useful {
                s.stats[c].useful_ops += 1;
            } else {
                s.stats[c].overhead_ops += 1;
            }
        };
    }

    match inst.op {
        MimdOp::Alu(op) | MimdOp::AluI(op) => {
            let rhs = if matches!(inst.op, MimdOp::AluI(_)) { Value::from_i64(imm) } else { rb };
            // `Sel rd, ra, rb`: rd = ra(predicate) ? rb : rd_old.
            let v = if matches!(op, Opcode::Sel) {
                trips_isa::exec::eval(Opcode::Sel, rhs, rd_old, ra)
            } else {
                let (_, needs_r, _) = op.ports();
                trips_isa::exec::eval(op, ra, if needs_r { rhs } else { Value::ZERO }, Value::ZERO)
            };
            s.regs[(rbase + inst.rd as usize) * nc + c] = v;
            s.pc[rank * nc + c] += 1;
            count!(useful && op.class() != OpClass::Mov);
            Step::Continue(t + op.latency(&m.params().ops))
        }
        MimdOp::Li => {
            s.regs[(rbase + inst.rd as usize) * nc + c] = Value::from_u64(imm as u64);
            s.pc[rank * nc + c] += 1;
            count!(false);
            Step::Continue(t + m.params().ops.mov)
        }
        MimdOp::Ld(space) => {
            let addr = ra.as_u64().wrapping_add(imm as u64);
            s.stats[c].loads += 1;
            let row = coord.row;
            let req = m.router.send_faulty(
                Endpoint::Node(coord),
                Endpoint::MemPort(row),
                t + alu,
                &mut m.fault,
            );
            let served = match space {
                MemSpace::Smc => {
                    s.stats[c].smc_accesses += 1;
                    m.smc[row as usize].access_faulty(addr, req, &mut m.fault)
                }
                MemSpace::L1 => {
                    s.stats[c].l1_accesses += 1;
                    let (t2, hit) = m.l1[row as usize].access_faulty(addr, req, &mut m.fault);
                    if !hit {
                        s.stats[c].l1_misses += 1;
                    }
                    t2
                }
            };
            let back = m.router.send_faulty(
                Endpoint::MemPort(row),
                Endpoint::Node(coord),
                served,
                &mut m.fault,
            );
            // The loaded value lands in the node's operand storage; a
            // parity flip there is re-latched from the network buffer.
            let back = m.fault.operand_write(back);
            s.stats[c].mem_stall_node_cycles += (back - t) / 2;
            s.regs[(rbase + inst.rd as usize) * nc + c] = m.mem.read(addr);
            s.pc[rank * nc + c] += 1;
            Step::Continue(back)
        }
        MimdOp::St(space) => {
            let addr = ra.as_u64().wrapping_add(imm as u64);
            s.stats[c].stores += 1;
            m.mem.write(addr, rb);
            let row = coord.row;
            let req = m.router.send_faulty(
                Endpoint::Node(coord),
                Endpoint::MemPort(row),
                t + alu,
                &mut m.fault,
            );
            let drained = match space {
                MemSpace::Smc => {
                    let t2 = m.stb[row as usize].push_faulty(addr, req, &mut m.fault);
                    m.smc[row as usize].store_faulty(addr, t2, &mut m.fault)
                }
                MemSpace::L1 => {
                    s.stats[c].l1_accesses += 1;
                    let (t2, hit) = m.l1[row as usize].access_faulty(addr, req, &mut m.fault);
                    if !hit {
                        s.stats[c].l1_misses += 1;
                    }
                    t2
                }
            };
            s.max_drain[c] = s.max_drain[c].max(drained);
            s.pc[rank * nc + c] += 1;
            // Stores retire into the buffer; the node moves on.
            Step::Continue(t + alu)
        }
        MimdOp::Lut => {
            let idx = ra.as_u64().wrapping_add(imm as u64);
            s.stats[c].l0_accesses += 1;
            s.regs[(rbase + inst.rd as usize) * nc + c] =
                m.l0_data.get(idx as usize).copied().unwrap_or(Value::ZERO);
            s.pc[rank * nc + c] += 1;
            Step::Continue(t + m.params().mem.l0_latency)
        }
        MimdOp::Jmp => {
            s.pc[rank * nc + c] = imm as u32;
            count!(false);
            Step::Continue(t + alu)
        }
        MimdOp::Bez | MimdOp::Bnz => {
            let taken = if matches!(inst.op, MimdOp::Bez) { !ra.is_true() } else { ra.is_true() };
            let pc = &mut s.pc[rank * nc + c];
            *pc = if taken { imm as u32 } else { *pc + 1 };
            count!(false);
            Step::Continue(t + alu)
        }
        MimdOp::Send => {
            let n_ranks = s.ranks.len();
            let dst = (imm as usize).min(n_ranks.saturating_sub(1));
            let arrive = m.router.send_faulty(
                Endpoint::Node(coord),
                Endpoint::Node(s.send_coords[dst]),
                t + alu,
                &mut m.fault,
            );
            // The message parks in the receiver's operand buffer; a
            // flipped entry is re-latched before it becomes visible.
            let arrive = m.fault.operand_write(arrive);
            s.channels[c].get_mut(rank, dst).push_back((arrive, ra));
            if s.blocked[dst * nc + c] == rank as u32 {
                // The receiver blocked on an empty channel; this message
                // is the front, so it proceeds at the arrival tick.
                s.blocked[dst * nc + c] = NOT_BLOCKED;
                mimd_buffer_wake(s, c, arrive, dst);
            }
            s.pc[rank * nc + c] += 1;
            count!(false);
            Step::Continue(t + alu)
        }
        MimdOp::Recv => {
            let src = imm as usize;
            if src >= s.ranks.len() {
                // No such peer: block forever (reported as a deadlock).
                s.blocked[rank * nc + c] = BLOCKED_NO_PEER;
                return Step::BlockedRecv;
            }
            let q = s.channels[c].get_mut(src, rank);
            match q.front().copied() {
                Some((arrive, v)) if arrive <= t => {
                    q.pop_front();
                    let _ = arrive;
                    s.regs[(rbase + inst.rd as usize) * nc + c] = v;
                    s.pc[rank * nc + c] += 1;
                    count!(false);
                    Step::Continue(t + alu)
                }
                Some((arrive, _)) => {
                    // In flight but not yet arrived: retry at arrival.
                    mimd_buffer_wake(s, c, arrive, rank);
                    Step::BlockedRecv
                }
                None => {
                    s.blocked[rank * nc + c] = src as u32;
                    Step::BlockedRecv
                }
            }
        }
        MimdOp::Halt => {
            s.halted[rank] |= 1u64 << c;
            Step::Halted
        }
    }
}

/// Execute one pure ALU/immediate instruction for every acting class in
/// one word-at-a-time pass. Preconditions (checked by the caller): all
/// acting classes share the program counter, the timing model is
/// uniform across classes, and the op is `Alu`/`AluI`/`Li` — no memory,
/// network, control flow, or channel state is touched, so per-class
/// effects reduce to a register write, a `pc += 1`, one stat count, and
/// a wake at a uniform `t + latency`. Operand rows are copied into lane
/// buffers before the destination row is written because `rd` may alias
/// `ra`/`rb`. Wakes are buffered per class in ascending index, exactly
/// the order the scalar per-class loop produces, so the merge buffer
/// sees identical pushes.
fn mimd_step_lanes(
    s: &mut BatchMimdScratch,
    m: &Machine,
    nc: usize,
    rank: usize,
    t: Tick,
    inst: MimdInst,
    act: u64,
) -> Tick {
    let rbase = rank * NUM_MIMD_REGS;
    let useful = inst.role == OpRole::Useful;
    let (next_t, countable_useful) = match inst.op {
        MimdOp::Li => {
            let v = Value::from_u64(inst.imm as u64);
            for lane in s.lane_v.iter_mut() {
                *lane = v;
            }
            (t + m.params().ops.mov, false)
        }
        MimdOp::Alu(op) | MimdOp::AluI(op) => {
            // Copy operand rows first: the rd row is written below and
            // may alias any of them.
            let ra_base = (rbase + inst.ra as usize) * nc;
            s.lane_a.copy_from_slice(&s.regs[ra_base..ra_base + nc]);
            if matches!(inst.op, MimdOp::AluI(_)) {
                let v = Value::from_i64(inst.imm);
                for lane in s.lane_b.iter_mut() {
                    *lane = v;
                }
            } else {
                let rb_base = (rbase + inst.rb as usize) * nc;
                s.lane_b.copy_from_slice(&s.regs[rb_base..rb_base + nc]);
            }
            if matches!(op, Opcode::Sel) {
                let rd_base = (rbase + inst.rd as usize) * nc;
                s.lane_d.copy_from_slice(&s.regs[rd_base..rd_base + nc]);
                mask::simd_eval_lanes(Opcode::Sel, &s.lane_b, &s.lane_d, &s.lane_a, &mut s.lane_v);
            } else {
                let (_, needs_r, _) = op.ports();
                let rhs: &[Value] = if needs_r { &s.lane_b } else { &s.lane_z };
                mask::simd_eval_lanes(op, &s.lane_a, rhs, &s.lane_z, &mut s.lane_v);
            }
            (t + op.latency(&m.params().ops), useful && op.class() != OpClass::Mov)
        }
        _ => unreachable!("mimd_step_lanes only handles Alu/AluI/Li"),
    };
    let rd_base = (rbase + inst.rd as usize) * nc;
    mask::simd_latch_lanes(&mut s.regs[rd_base..rd_base + nc], &s.lane_v, act);
    mask::simd_add_one_u32(&mut s.pc[rank * nc..rank * nc + nc], act);
    if countable_useful {
        mask::simd_add_one_u64(&mut s.col_useful, act);
    } else {
        mask::simd_add_one_u64(&mut s.col_overhead, act);
    }
    next_t
}

/// Class `c` has drained every wakeup: latch its final result (or the
/// scalar deadlock/fault error).
fn mimd_finalize(s: &mut BatchMimdScratch, m: &mut Machine, c: usize) {
    // A fault escalated by the last step has no successor pop to
    // observe it — catch it before declaring the run complete.
    if let Some(fatal) = m.fault.fatal() {
        mimd_kill(s, c, fatal.to_error());
        return;
    }
    let bit = 1u64 << c;
    for rank in 0..s.ranks.len() {
        if s.halted[rank] & bit == 0 {
            let detail = format!("mimd deadlock: node rank {rank} never halted");
            mimd_kill(s, c, DlpError::MalformedProgram { detail });
            return;
        }
    }
    let mut stats = s.stats[c];
    stats.mimd_fetches += s.col_fetches[c];
    stats.useful_ops += s.col_useful[c];
    stats.overhead_ops += s.col_overhead[c];
    stats.ticks = s.last_tick[c].max(s.max_drain[c]);
    let net = m.router.stats();
    stats.net_msgs = net.msgs;
    stats.net_hops = net.hops;
    stats.record_faults(m.fault.take_stats());
    s.results[c] = Some(Ok(stats));
    s.dead |= 1u64 << c;
}

/// Run the array in MIMD mode on every machine in `machines`
/// simultaneously, one lane class per machine, with the standard
/// register conventions (`r30` = rank, `r31` = participating count,
/// `r29` = the class's own `records[c]`) — bit-identical per class to
/// [`Machine::run_mimd_in`](crate::Machine::run_mimd_in) with that
/// record count.
///
/// All machines must share one grid, timing model, and mechanism set.
/// Record counts may differ per class (cross-record tails): `records`
/// only feeds `r29`, so a class whose program loops fewer times simply
/// halts earlier and masks off.
///
/// # Panics
///
/// If `machines` is empty, longer than [`MAX_CLASSES`], a different
/// length than `records`, or the machines disagree on grid shape.
#[allow(clippy::too_many_lines)]
pub fn run_mimd_batch_in(
    machines: &mut [Machine],
    programs: &[MimdProgram],
    records: &[u64],
    arena: &mut EngineArena,
) -> Vec<Result<SimStats, DlpError>> {
    let nc = machines.len();
    assert!(
        (1..=MAX_CLASSES).contains(&nc),
        "batched dispatch takes 1..={MAX_CLASSES} lane classes, got {nc}"
    );
    assert_eq!(records.len(), nc, "one record count per lane class");
    assert!(
        machines.iter().all(|m| m.grid() == machines[0].grid()),
        "batched lane classes must share one grid shape"
    );
    // Static program checks, mirroring the scalar order (before any
    // machine state is touched).
    let check = {
        let m0 = &machines[0];
        if !m0.mechanisms().local_pc {
            Some(DlpError::Unsupported {
                what: "MIMD execution without local program counters".into(),
            })
        } else {
            let cap = m0.params().core.l0_inst_capacity;
            let mut err = None;
            'progs: for p in programs {
                if p.len() > cap {
                    err = Some(DlpError::CapacityExceeded {
                        resource: "L0 instruction-store entries",
                        needed: p.len(),
                        available: cap,
                    });
                    break;
                }
                for inst in p.insts() {
                    match inst.op {
                        MimdOp::Lut if !m0.mechanisms().l0_data_store => {
                            err = Some(DlpError::Unsupported {
                                what: "lut instruction without the L0 data store".into(),
                            });
                            break 'progs;
                        }
                        MimdOp::Ld(MemSpace::Smc) | MimdOp::St(MemSpace::Smc)
                            if !m0.mechanisms().smc =>
                        {
                            err = Some(DlpError::Unsupported {
                                what: "SMC memory access without the SMC mechanism".into(),
                            });
                            break 'progs;
                        }
                        _ => {}
                    }
                }
            }
            err
        }
    };
    if let Some(e) = check {
        return (0..nc).map(|_| Err(e.clone())).collect();
    }

    let s = &mut arena.batch_mimd;
    s.stats.clear();
    for m in machines.iter_mut() {
        s.stats.push(m.begin_run());
    }
    let grid = machines[0].grid();
    let n = programs.len().min(grid.nodes());
    s.ranks.clear();
    s.ranks.extend((0..n).filter(|&i| !programs[i].is_empty()));
    if s.ranks.is_empty() {
        return s.stats.iter().map(|&st| Ok(st)).collect();
    }
    let n_ranks = s.ranks.len();
    let n_active = programs.iter().filter(|p| !p.is_empty()).count() as u64;

    // Setup block: broadcast programs into the L0 instruction stores.
    let longest = programs.iter().map(MimdProgram::len).max().unwrap_or(0);
    let mut start = Vec::with_capacity(nc);
    for (c, m) in machines.iter().enumerate() {
        start.push(s.stats[c].ticks + m.fetch_ticks(longest));
        s.stats[c].blocks_fetched = 1;
    }

    s.regs.clear();
    s.regs.resize(n_ranks * NUM_MIMD_REGS * nc, Value::ZERO);
    s.pc.clear();
    s.pc.resize(n_ranks * nc, 0);
    s.halted.clear();
    s.halted.resize(n_ranks, 0);
    s.blocked.clear();
    s.blocked.resize(n_ranks * nc, NOT_BLOCKED);
    for rank in 0..n_ranks {
        let rbase = rank * NUM_MIMD_REGS;
        for c in 0..nc {
            s.regs[(rbase + REG_NODE_ID as usize) * nc + c] = Value::from_u64(rank as u64);
            s.regs[(rbase + REG_NODE_COUNT as usize) * nc + c] = Value::from_u64(n_active);
            s.regs[(rbase + REG_RECORDS as usize) * nc + c] = Value::from_u64(records[c]);
            s.stats[c].iterations = s.stats[c].iterations.max(records[c]);
        }
    }
    s.coords.clear();
    for &i in &s.ranks {
        s.coords.push(grid.coord(i));
    }
    s.send_coords.clear();
    for d in 0..n_ranks {
        s.send_coords.push(grid.coord_of_rank(d, n_ranks));
    }

    s.channels.clear();
    s.channels.resize_with(nc, Channels::default);
    for ch in &mut s.channels {
        ch.reset(n_ranks);
    }
    s.queue.clear();
    s.buf.reset(nc);
    s.steps.clear();
    s.steps.resize(nc, 0);
    s.last_tick.clear();
    s.max_drain.clear();
    s.live.clear();
    s.live.resize(nc, 0);
    s.col_fetches.clear();
    s.col_fetches.resize(nc, 0);
    s.col_useful.clear();
    s.col_useful.resize(nc, 0);
    s.col_overhead.clear();
    s.col_overhead.resize(nc, 0);
    s.lane_a.clear();
    s.lane_a.resize(nc, Value::ZERO);
    s.lane_b.clear();
    s.lane_b.resize(nc, Value::ZERO);
    s.lane_d.clear();
    s.lane_d.resize(nc, Value::ZERO);
    s.lane_v.clear();
    s.lane_v.resize(nc, Value::ZERO);
    s.lane_z.clear();
    s.lane_z.resize(nc, Value::ZERO);
    s.results.clear();
    s.results.resize(nc, None);
    s.dead = 0;
    for &st in &start {
        s.last_tick.push(st);
        s.max_drain.push(st);
    }
    for rank in 0..n_ranks {
        for c in 0..nc {
            mimd_buffer_wake(s, c, start[c], rank);
        }
    }
    mimd_flush(s);

    // The step budget follows from the watchdog: with every
    // instruction advancing its node's tick by at least one cycle, a
    // rank can be popped at most once per distinct tick in
    // `0..=watchdog_ticks`. Exceeding it means a zero-latency livelock
    // the tick check alone would never catch.
    s.budget.clear();
    s.budget.extend(
        machines
            .iter()
            .map(|m| (n_ranks as u64).saturating_mul(m.watchdog_ticks.saturating_add(1))),
    );

    // Hoisted divergence guards (see the dataflow twin): one uniform
    // watchdog bound, one armed-fault mask, and one vectorized
    // budget screen replace the per-class walk on the fast path.
    let wd_min = machines.iter().map(|m| m.watchdog_ticks).min().unwrap_or(0);
    let mut fault_armed = 0u64;
    for (c, m) in machines.iter().enumerate() {
        if !m.fault.plan().is_none() {
            fault_armed |= 1u64 << c;
        }
    }
    let params = *machines[0].params();
    let uniform_timing = machines.iter().all(|m| *m.params() == params);

    while let Some((t, rank, mask_w)) = s.queue.pop() {
        let alive = mask_w & !s.dead;
        if alive == 0 {
            continue;
        }

        // Divergence fixup, hoisted: walk classes only when a bound is
        // actually crossed (scalar error order: watchdog/budget, then
        // latched fault, ascending class index).
        let over = mask::simd_over_mask(&s.steps, &s.budget, nc);
        let proc = if t <= wd_min && alive & (fault_armed | over) == 0 {
            alive
        } else {
            let mut proc: u64 = 0;
            let mut bits = alive;
            while bits != 0 {
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let m = &machines[c];
                if t > m.watchdog_ticks || s.steps[c] > s.budget[c] {
                    let context = format!(
                        "mimd rank {rank} at pc {} ({} steps, budget {} = {n_ranks} ranks x (watchdog {} + 1))",
                        s.pc[rank * nc + c],
                        s.steps[c],
                        s.budget[c],
                        m.watchdog_ticks
                    );
                    mimd_kill(s, c, DlpError::Watchdog { ticks: t, context });
                    continue;
                }
                if let Some(fatal) = m.fault.fatal() {
                    mimd_kill(s, c, fatal.to_error());
                    continue;
                }
                proc |= 1u64 << c;
            }
            proc
        };

        // The scalar loop counts a step for halted classes too.
        mask::simd_add_one_u64(&mut s.steps, proc);
        let act = proc & !s.halted[rank];
        if act != 0 {
            let prog = &programs[s.ranks[rank]];
            let plen = prog.len() as u32;
            // One pass over the acting classes: program-counter
            // uniformity and bounds.
            let first_c = act.trailing_zeros() as usize;
            let pc0 = s.pc[rank * nc + first_c];
            let mut uniform_pc = true;
            let mut in_bounds = true;
            let mut bits = act;
            while bits != 0 {
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let pc = s.pc[rank * nc + c];
                uniform_pc &= pc == pc0;
                in_bounds &= pc < plen;
            }
            let fast = uniform_pc
                && in_bounds
                && uniform_timing
                && act.count_ones() >= 2
                && matches!(
                    prog.insts()[pc0 as usize].op,
                    MimdOp::Alu(_) | MimdOp::AluI(_) | MimdOp::Li
                );
            if fast {
                let inst = prog.insts()[pc0 as usize];
                mask::simd_add_one_u64(&mut s.col_fetches, act);
                mask::simd_max_tick(&mut s.last_tick, t, act);
                let next_t = mimd_step_lanes(s, &machines[first_c], nc, rank, t, inst, act);
                mask::simd_max_tick(&mut s.last_tick, next_t, act);
                let mut bits = act;
                while bits != 0 {
                    let c = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    mimd_buffer_wake(s, c, next_t, rank);
                }
            } else {
                // Divergent program counters, singleton masks, or
                // engine-special ops: the exact scalar per-class body.
                let mut bits = act;
                while bits != 0 {
                    let c = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let pc = s.pc[rank * nc + c];
                    if pc >= plen {
                        let detail = format!("mimd node rank {rank} ran off the end of its program");
                        mimd_kill(s, c, DlpError::MalformedProgram { detail });
                        continue;
                    }
                    let inst = prog.insts()[pc as usize];
                    s.stats[c].mimd_fetches += 1;
                    s.last_tick[c] = s.last_tick[c].max(t);
                    match mimd_step_inst(s, &mut machines[c], c, nc, rank, t, inst) {
                        Step::Continue(next_t) => {
                            s.last_tick[c] = s.last_tick[c].max(next_t);
                            mimd_buffer_wake(s, c, next_t, rank);
                        }
                        Step::Halted => {}
                        Step::BlockedRecv => {}
                    }
                }
            }
        }
        mimd_flush(s);

        // Consume the wakeup; classes that drained finalize.
        let mut bits = alive & !s.dead;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            s.live[c] -= 1;
            if s.live[c] == 0 {
                mimd_finalize(s, &mut machines[c], c);
            }
        }
    }

    s.results
        .iter_mut()
        .map(|r| {
            r.take().unwrap_or_else(|| {
                Err(DlpError::Internal {
                    detail: "batched mimd engine left a lane class unresolved".into(),
                })
            })
        })
        .collect()
}
