//! Lane-batched execution: N variants of one prepared lowering run in
//! lockstep through a single shared calendar queue (DESIGN.md §10, §12).
//!
//! A *lane class* is one complete scalar run — same block or programs,
//! its own `Machine` (memory image, registers, router, caches, fault
//! injector) — and up to [`MAX_CLASSES`] classes execute simultaneously.
//! Queue events carry a class **bitmask**: classes whose schedules agree
//! share one event (one queue entry, one bucket walk, one readiness
//! check covers all of them), and classes that diverge (faults, early
//! errors, exhausted record tails) simply mask off rather than fork the
//! run.
//!
//! Per-class state is structure-of-arrays with the class index
//! innermost: operand values are `[frame][inst][port][class]` strides,
//! operand presence and executed flags are one `u64` bitmask per
//! `[frame][inst][port]` / `[frame][inst]`, and issue/register-port
//! throttles are `[resource][class]`. The hot passes — operand latch,
//! per-event bookkeeping, ALU evaluation, and stat accumulation — are
//! branch-free word-at-a-time loops over the class stride
//! (the `mask` module), written so the autovectorizer emits SIMD for them
//! (`cargo xtask asmcheck` greps the release asm for vector ops on the
//! tagged functions). Divergence handling (watchdog trips, latched
//! fatal faults) is hoisted out of the inner loops into mask fixup:
//! the fast path computes one processing mask per event and only walks
//! individual classes on the rare tick where a uniform bound is
//! crossed.
//!
//! **Cross-record tails.** Classes need not run the same number of
//! iterations (dataflow) or records (MIMD): each class carries its own
//! count, a class whose tail is exhausted completes and masks itself
//! off (`dead`), and the survivors' shared schedule is untouched —
//! mask-padded tails instead of up-front exclusion, so lanes with
//! different record counts can share one dispatch.
//!
//! **Determinism.** Per-class results are bit-identical to scalar runs
//! (`run_dataflow_in` / `run_mimd_in`) because, for every class `c`, the
//! restriction of the shared queue's pop order to events containing `c`
//! equals the scalar queue's `(tick, key, seq)` order. Pushes produced
//! while processing one popped event are buffered and merged across
//! classes under the *cursor rule*: class `c` may join a buffered entry
//! only at or past its own cursor (the position after its previous
//! push) and only if the entry does not already carry bit `c`. This
//! keeps each class's flush positions strictly increasing in its push
//! order — so per-class sequence numbers are monotone in scalar push
//! order — and preserves per-class multiplicity (two same-payload pushes
//! by one class stay two entries, exactly like the scalar MIMD
//! send-to-self wakeup). Classes within one event are processed in
//! ascending class index, and no per-class computation reads another
//! class's state, so lane order cannot leak into results. The
//! word-at-a-time passes preserve that argument: they update only
//! per-class columns (`state[.. * nc + c]`) under the event's
//! processing mask, commute across the class dimension, and never
//! consult a neighbouring lane's word.

// Lane classes are addressed by a dense index `c` into parallel SoA
// arrays (machines, stats, masks, cursors); index loops are the
// natural form here, not an iterator smell.
#![allow(clippy::needless_range_loop)]

use dlp_common::Tick;

pub(crate) mod mask;

mod dataflow;
mod mimd;

pub use dataflow::run_dataflow_batch_in;
pub use mimd::run_mimd_batch_in;

pub(crate) use dataflow::BatchDataflowScratch;
pub(crate) use mimd::BatchMimdScratch;

/// Maximum lane classes per batched dispatch (the event bitmask width).
pub const MAX_CLASSES: usize = 64;

/// Sentinel instruction index marking a quiesce (bookkeeping) event.
const NO_INST: u32 = u32::MAX;
/// Sentinel row index for events that carry no operand values.
const NO_ROW: u32 = u32::MAX;

/// One buffered (not yet flushed) push from the current merge window.
#[derive(Clone, Copy)]
struct Pending {
    tick: Tick,
    /// Dataflow: frame index. MIMD: rank.
    slot: u32,
    /// Dataflow: destination instruction or [`NO_INST`]. MIMD: unused (0).
    inst: u32,
    /// Dataflow: destination port index 0..3. MIMD: unused (0).
    port: u8,
    mask: u64,
    /// Dataflow operand events: index of the per-class value row.
    row: u32,
}

/// A queued event: the payload identity plus the class mask.
#[derive(Clone, Copy)]
struct BatchEv {
    mask: u64,
    frame: u32,
    inst: u32,
    port: u8,
    row: u32,
}

/// The shared merge buffer: pending pushes for the current window plus
/// each class's cursor (the pend index after its latest push).
#[derive(Default)]
struct MergeBuf {
    pend: Vec<Pending>,
    cursors: Vec<usize>,
}

impl MergeBuf {
    fn reset(&mut self, nc: usize) {
        self.pend.clear();
        self.cursors.clear();
        self.cursors.resize(nc, 0);
    }

    /// Buffer one push for class `c` under the cursor rule: join the
    /// first entry at or past `cursors[c]` with identical
    /// `(tick, slot, inst, port)` that does not yet carry bit `c`, else
    /// append. Returns the pend index the push landed in, and whether it
    /// was an append (the caller allocates value rows on appends).
    fn push(&mut self, c: usize, tick: Tick, slot: u32, inst: u32, port: u8) -> (usize, bool) {
        let bit = 1u64 << c;
        let start = self.cursors[c];
        for idx in start..self.pend.len() {
            let p = &mut self.pend[idx];
            if p.tick == tick
                && p.slot == slot
                && p.inst == inst
                && p.port == port
                && p.mask & bit == 0
            {
                p.mask |= bit;
                self.cursors[c] = idx + 1;
                return (idx, false);
            }
        }
        self.pend.push(Pending { tick, slot, inst, port, mask: bit, row: NO_ROW });
        self.cursors[c] = self.pend.len();
        (self.pend.len() - 1, true)
    }
}
