//! Batched dataflow execution: the dataflow half of the lane-batched
//! lockstep engine (see the [`batch`](super) module docs for the
//! determinism argument and SoA layout).

use dlp_common::{DlpError, SimStats, Tick, Value};
use trips_isa::{DataflowBlock, MemSpace, OpClass, OpRole, Opcode, Port};
use trips_mem::Throttle;
use trips_noc::Endpoint;

use super::{mask, BatchEv, MergeBuf, MAX_CLASSES, NO_INST, NO_ROW};
use crate::dataflow::{port_idx, reserve_cycle, DataflowScratch, ResolvedTarget};
use crate::equeue::CalendarQueue;
use crate::{EngineArena, Machine};

/// Recyclable storage for one batched dataflow run, owned by an
/// [`EngineArena`](crate::EngineArena). Block-shape tables live in the
/// embedded [`DataflowScratch`] and are built by the same
/// `build_tables` the scalar engine uses, so routing and readiness are
/// bit-identical by construction.
#[derive(Default)]
pub(crate) struct BatchDataflowScratch {
    /// Shared block tables (only the table fields are used here).
    pub(crate) tables: DataflowScratch,
    events: CalendarQueue<(), BatchEv>,
    buf: MergeBuf,
    /// Operand values, `[frame][inst][port][class]` (class innermost).
    ops_val: Vec<Value>,
    /// Operand-present bitmasks, one per `[frame][inst][port]`.
    ops_set: Vec<u64>,
    /// Executed bitmasks, one per `[frame][inst]`.
    executed: Vec<u64>,
    /// Executed-instruction counts, `[frame][class]`.
    exec_count: Vec<u32>,
    /// Outstanding events per `[frame][class]`.
    pending: Vec<u32>,
    /// Latest event tick per `[frame][class]`.
    frame_last_tick: Vec<Tick>,
    /// Kernel iteration per `[frame][class]`.
    frame_iter: Vec<u64>,
    /// Issue throttles, `[node][class]`.
    node_issue: Vec<Throttle>,
    /// Register-bank read-port throttles, `[bank][class]`.
    reg_bank_ports: Vec<Throttle>,
    /// Per-class value rows: row `r` is `rows[r*nc..(r+1)*nc]`.
    rows: Vec<Value>,
    free_rows: Vec<u32>,
    // Per-class run state.
    /// Requested iteration count per class (cross-record tails).
    iterations: Vec<u64>,
    /// In-flight frame count per class (`0` for zero-iteration tails).
    frames_of: Vec<u32>,
    fetch_done: Vec<Tick>,
    next_iter: Vec<u64>,
    done_iters: Vec<u64>,
    final_tick: Vec<Tick>,
    /// Outstanding queued events per class (frames summed).
    live: Vec<u64>,
    stats: Vec<SimStats>,
    /// Useful-op counts accumulated by the lane-vectorized execute pass,
    /// folded into `stats` at finalize (sums are order-independent).
    col_useful: Vec<u64>,
    /// Overhead-op counts from the lane-vectorized execute pass.
    col_overhead: Vec<u64>,
    // Operand/result lane buffers for the vectorized ALU pass.
    lane_l: Vec<Value>,
    lane_r: Vec<Value>,
    lane_p: Vec<Value>,
    lane_v: Vec<Value>,
    results: Vec<Option<Result<SimStats, DlpError>>>,
    /// Classes that latched a result and no longer process events.
    dead: u64,
}

/// Loop-invariant context for one batched dataflow run.
#[derive(Clone, Copy)]
struct DfCtx {
    nc: usize,
    len: usize,
    banks: u16,
    reg_cols: u8,
    op_revit: bool,
    inst_revit: bool,
    per_fetch: Tick,
    revitalize_delay: Tick,
    /// All machines share one timing model: ALU latencies are uniform,
    /// so whole-instruction lane passes are legal.
    uniform_timing: bool,
}

fn df_alloc_row(s: &mut BatchDataflowScratch, nc: usize) -> u32 {
    if let Some(r) = s.free_rows.pop() {
        return r;
    }
    let r = (s.rows.len() / nc) as u32;
    s.rows.resize(s.rows.len() + nc, Value::ZERO);
    r
}

/// Buffer one operand/quiesce push for class `c`. `inst == NO_INST`
/// means quiesce (no value row).
#[allow(clippy::too_many_arguments)]
fn df_buffer(
    s: &mut BatchDataflowScratch,
    ctx: DfCtx,
    c: usize,
    tick: Tick,
    frame: usize,
    inst: u32,
    port: u8,
    value: Value,
) {
    let (idx, appended) = s.buf.push(c, tick, frame as u32, inst, port);
    if inst != NO_INST {
        if appended {
            let row = df_alloc_row(s, ctx.nc);
            s.buf.pend[idx].row = row;
        }
        let row = s.buf.pend[idx].row as usize;
        s.rows[row * ctx.nc + c] = value;
    }
    s.pending[frame * ctx.nc + c] += 1;
    s.live[c] += 1;
}

fn df_flush(s: &mut BatchDataflowScratch) {
    for idx in 0..s.buf.pend.len() {
        let p = s.buf.pend[idx];
        s.events.push(
            p.tick,
            (),
            BatchEv { mask: p.mask, frame: p.slot, inst: p.inst, port: p.port, row: p.row },
        );
    }
    s.buf.pend.clear();
    for cur in &mut s.buf.cursors {
        *cur = 0;
    }
}

fn df_kill(s: &mut BatchDataflowScratch, c: usize, err: DlpError) {
    s.results[c] = Some(Err(err));
    s.dead |= 1u64 << c;
}

/// Seed one iteration's initial activity for class `c` at `start` on
/// `frame` — the exact scalar `seed_iteration`, buffered.
#[allow(clippy::too_many_arguments)]
fn df_seed_iteration(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
    start: Tick,
    iter: u64,
    first: bool,
) {
    let nc = ctx.nc;
    s.frame_iter[frame * nc + c] = iter;
    let lt = &mut s.frame_last_tick[frame * nc + c];
    *lt = (*lt).max(start);
    for (ri, rr) in block.reg_reads().iter().enumerate() {
        if !first && ctx.op_revit && rr.persistent {
            continue; // value survived revitalization
        }
        let bank = (rr.reg % ctx.banks) as usize;
        let inject = reserve_cycle(&mut s.reg_bank_ports[bank * nc + c], start);
        s.stats[c].reg_reads += 1;
        let bank_col = (bank as u8).min(ctx.reg_cols - 1);
        let value = m.regs[rr.reg as usize];
        let (span_start, span_end) = s.tables.reg_read_span[ri];
        for k in span_start..span_end {
            let (inst, port, node) = s.tables.reg_read_dsts[k as usize];
            let arrive = m.router.send_faulty(
                Endpoint::RegBank(bank_col),
                Endpoint::Node(node),
                inject,
                &mut m.fault,
            );
            let arrive = m.fault.operand_write(arrive);
            df_buffer(s, ctx, c, arrive, frame, inst as u32, port_idx(port) as u8, value);
        }
    }
    // Source instructions with no required operands fire at start.
    let bit = 1u64 << c;
    for i in 0..ctx.len {
        if s.executed[frame * ctx.len + i] & bit != 0 {
            continue;
        }
        let b3 = (frame * ctx.len + i) * 3;
        let req = s.tables.required[i];
        let ready = (!req[0] || s.ops_set[b3] & bit != 0)
            && (!req[1] || s.ops_set[b3 + 1] & bit != 0)
            && (!req[2] || s.ops_set[b3 + 2] & bit != 0);
        if ready {
            df_execute(ctx, block, s, m, c, frame, i, start);
        }
    }
}

/// True for opcodes the scalar engine evaluates through
/// [`trips_isa::exec::eval`] — the arms eligible for the lane-vectorized
/// execute pass. Engine-special opcodes (immediates, iteration counters,
/// memory, table lookups) keep the scalar per-class path.
fn df_is_eval_op(op: Opcode) -> bool {
    !matches!(
        op,
        Opcode::MovI
            | Opcode::Iter
            | Opcode::Nop
            | Opcode::Lut
            | Opcode::Load(_)
            | Opcode::Lmw
            | Opcode::Store(_)
    )
}

/// Issue and execute instruction `i` for class `c` — the exact scalar
/// `execute`, against class-local machine and SoA state.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn df_execute(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
    i: usize,
    t: Tick,
) {
    let nc = ctx.nc;
    let bit = 1u64 << c;
    let inst = &block.insts()[i];
    let node = inst.slot.node;
    let node_idx = s.tables.inst_node[i];
    let issue = reserve_cycle(&mut s.node_issue[node_idx * nc + c], t);
    s.executed[frame * ctx.len + i] |= bit;
    s.exec_count[frame * nc + c] += 1;

    let lat = inst.op.latency(&m.params().ops);
    let b3 = (frame * ctx.len + i) * 3;
    let op_val = |s: &BatchDataflowScratch, p: usize| -> Option<Value> {
        if s.ops_set[b3 + p] & bit != 0 {
            Some(s.ops_val[(b3 + p) * nc + c])
        } else {
            None
        }
    };
    let l = op_val(s, 0).unwrap_or(Value::ZERO);
    let r = op_val(s, 1).or(inst.imm).unwrap_or(Value::ZERO);
    let p = op_val(s, 2).unwrap_or(Value::ZERO);
    let iter = s.frame_iter[frame * nc + c];

    // Metric accounting.
    match inst.op {
        Opcode::Load(_) | Opcode::Lmw => s.stats[c].loads += 1,
        Opcode::Store(_) => s.stats[c].stores += 1,
        Opcode::Lut => s.stats[c].l0_accesses += 1,
        _ => {}
    }
    let countable = !inst.op.is_mem() && inst.op.class() != OpClass::Mov;
    if countable && inst.role == OpRole::Useful {
        s.stats[c].useful_ops += 1;
    } else {
        s.stats[c].overhead_ops += 1;
    }

    let row = node.row;
    match inst.op {
        Opcode::MovI => {
            let v = inst.imm.unwrap_or(Value::ZERO);
            df_fan_out(ctx, block, s, m, c, frame, i, issue + lat, v);
        }
        Opcode::Iter => {
            df_fan_out(ctx, block, s, m, c, frame, i, issue + lat, Value::from_u64(iter));
        }
        Opcode::Nop => {}
        Opcode::Lut => {
            let index = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
            let v = m.l0_data.get(index as usize).copied().unwrap_or(Value::ZERO);
            let done = issue + m.params().mem.l0_latency;
            df_fan_out(ctx, block, s, m, c, frame, i, done, v);
        }
        Opcode::Load(space) => {
            let addr = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
            let handoff = issue + lat;
            let req = m.router.send_faulty(
                Endpoint::Node(node),
                Endpoint::MemPort(row),
                handoff,
                &mut m.fault,
            );
            let served = match space {
                MemSpace::Smc => {
                    s.stats[c].smc_accesses += 1;
                    m.smc[row as usize].access_faulty(addr, req, &mut m.fault)
                }
                MemSpace::L1 => {
                    s.stats[c].l1_accesses += 1;
                    let (t2, hit) = m.l1[row as usize].access_faulty(addr, req, &mut m.fault);
                    if !hit {
                        s.stats[c].l1_misses += 1;
                    }
                    t2
                }
            };
            let back = m.router.send_faulty(
                Endpoint::MemPort(row),
                Endpoint::Node(node),
                served,
                &mut m.fault,
            );
            let v = m.mem.read(addr);
            df_fan_out(ctx, block, s, m, c, frame, i, back, v);
        }
        Opcode::Lmw => {
            let addr = l.as_u64();
            let n = inst.imm.map_or(0, |v| v.as_u64()) as u32;
            let handoff = issue + lat;
            let req = m.router.send_faulty(
                Endpoint::Node(node),
                Endpoint::MemPort(row),
                handoff,
                &mut m.fault,
            );
            s.stats[c].smc_accesses += 1;
            s.stats[c].lmw_words += u64::from(n);
            let served = m.smc[row as usize].access_wide_faulty(addr, n, req, &mut m.fault);
            // The streaming channel delivers word k straight to target k.
            let (span_start, span_end) = s.tables.resolved_span[i];
            for (k, ti) in (span_start..span_end).enumerate() {
                let tgt = s.tables.resolved[ti as usize];
                let v = m.mem.read(addr + k as u64);
                df_deliver(ctx, s, m, c, frame, tgt, Endpoint::MemPort(row), served, v);
            }
        }
        Opcode::Store(space) => {
            let addr = l.as_u64().wrapping_add(inst.imm.map_or(0, |v| v.as_u64()));
            m.mem.write(addr, r);
            let handoff = issue + lat;
            let req = m.router.send_faulty(
                Endpoint::Node(node),
                Endpoint::MemPort(row),
                handoff,
                &mut m.fault,
            );
            let drained = match space {
                MemSpace::Smc => {
                    let t2 = m.stb[row as usize].push_faulty(addr, req, &mut m.fault);
                    m.smc[row as usize].store_faulty(addr, t2, &mut m.fault)
                }
                MemSpace::L1 => {
                    s.stats[c].l1_accesses += 1;
                    let (t2, hit) = m.l1[row as usize].access_faulty(addr, req, &mut m.fault);
                    if !hit {
                        s.stats[c].l1_misses += 1;
                    }
                    t2
                }
            };
            df_buffer(s, ctx, c, drained, frame, NO_INST, 0, Value::ZERO);
        }
        _ => {
            let v = trips_isa::exec::eval(inst.op, l, r, p);
            df_fan_out(ctx, block, s, m, c, frame, i, issue + lat, v);
        }
    }
}

/// Execute an eval-arm instruction for every ready class in one
/// word-at-a-time pass: whole-mask executed/exec-count/stat updates,
/// masked operand gather, one [`mask::simd_eval_lanes`] ALU pass, then
/// per-class issue reservation and fan-out in ascending class index —
/// the same per-class order the scalar loop produces, so the merge
/// buffer sees identical pushes and every per-class result stays
/// bit-identical.
#[allow(clippy::too_many_arguments)]
fn df_execute_lanes(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    machines: &mut [Machine],
    frame: usize,
    i: usize,
    t: Tick,
    ready: u64,
) {
    let nc = ctx.nc;
    let inst = &block.insts()[i];
    s.executed[frame * ctx.len + i] |= ready;
    let fbase = frame * nc;
    mask::simd_add_one_u32(&mut s.exec_count[fbase..fbase + nc], ready);

    // Eval arms are never memory ops: countable iff not a move.
    let countable = inst.op.class() != OpClass::Mov;
    if countable && inst.role == OpRole::Useful {
        mask::simd_add_one_u64(&mut s.col_useful, ready);
    } else {
        mask::simd_add_one_u64(&mut s.col_overhead, ready);
    }

    // Operand gather: present lanes read their latched value, absent
    // lanes take the uniform default (the immediate for the right
    // operand, zero otherwise) — exactly the scalar `op_val` chain.
    let b3 = (frame * ctx.len + i) * 3;
    let imm = inst.imm.unwrap_or(Value::ZERO);
    mask::simd_select_lanes(
        &mut s.lane_l,
        &s.ops_val[b3 * nc..(b3 + 1) * nc],
        s.ops_set[b3],
        Value::ZERO,
    );
    mask::simd_select_lanes(
        &mut s.lane_r,
        &s.ops_val[(b3 + 1) * nc..(b3 + 2) * nc],
        s.ops_set[b3 + 1],
        imm,
    );
    mask::simd_select_lanes(
        &mut s.lane_p,
        &s.ops_val[(b3 + 2) * nc..(b3 + 3) * nc],
        s.ops_set[b3 + 2],
        Value::ZERO,
    );
    mask::simd_eval_lanes(inst.op, &s.lane_l, &s.lane_r, &s.lane_p, &mut s.lane_v);

    // Per-class issue + fan-out, ascending class index (scalar order;
    // the timing model is uniform — gated by `ctx.uniform_timing`).
    let node_idx = s.tables.inst_node[i];
    let lat = inst.op.latency(&machines[0].params().ops);
    let mut bits = ready;
    while bits != 0 {
        let c = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let issue = reserve_cycle(&mut s.node_issue[node_idx * nc + c], t);
        let v = s.lane_v[c];
        df_fan_out(ctx, block, s, &mut machines[c], c, frame, i, issue + lat, v);
    }
}

/// Route instruction `i`'s result to all its targets at `t`.
#[allow(clippy::too_many_arguments)]
fn df_fan_out(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
    i: usize,
    t: Tick,
    v: Value,
) {
    let node = block.insts()[i].slot.node;
    let (span_start, span_end) = s.tables.resolved_span[i];
    for ti in span_start..span_end {
        let tgt = s.tables.resolved[ti as usize];
        df_deliver(ctx, s, m, c, frame, tgt, Endpoint::Node(node), t, v);
    }
    if span_start == span_end {
        df_buffer(s, ctx, c, t, frame, NO_INST, 0, Value::ZERO);
    }
}

#[allow(clippy::too_many_arguments)]
fn df_deliver(
    ctx: DfCtx,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
    tgt: ResolvedTarget,
    from: Endpoint,
    t: Tick,
    v: Value,
) {
    match tgt {
        ResolvedTarget::Port { inst, node, port } => {
            let arrive = m.router.send_faulty(from, Endpoint::Node(node), t, &mut m.fault);
            // The destination reservation station is an operand store:
            // a flipped entry is detected by parity and re-latched.
            let arrive = m.fault.operand_write(arrive);
            df_buffer(s, ctx, c, arrive, frame, inst as u32, port_idx(port) as u8, v);
        }
        ResolvedTarget::Reg { reg, bank_col } => {
            let arrive = m.router.send_faulty(from, Endpoint::RegBank(bank_col), t, &mut m.fault);
            m.regs[reg as usize] = v;
            s.stats[c].reg_writes += 1;
            df_buffer(s, ctx, c, arrive, frame, NO_INST, 0, Value::ZERO);
        }
    }
}

/// Reset class `c`'s view of a frame for its next iteration.
fn df_reset_frame(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    c: usize,
    frame: usize,
    keep_persistent: bool,
) {
    let op_revit = keep_persistent && ctx.op_revit;
    let bit = 1u64 << c;
    for i in 0..ctx.len {
        s.executed[frame * ctx.len + i] &= !bit;
        let persist = block.insts()[i].persistent;
        let b3 = (frame * ctx.len + i) * 3;
        for (pi, port) in [Port::Left, Port::Right, Port::Pred].into_iter().enumerate() {
            if !(op_revit && persist.contains(port)) {
                s.ops_set[b3 + pi] &= !bit;
            }
        }
    }
    s.exec_count[frame * ctx.nc + c] = 0;
}

/// Class `c`'s frame `frame` has no outstanding events: complete the
/// iteration (or latch the scalar stall error) and seed the next one.
fn df_complete_iteration(
    ctx: DfCtx,
    block: &DataflowBlock,
    s: &mut BatchDataflowScratch,
    m: &mut Machine,
    c: usize,
    frame: usize,
) {
    let nc = ctx.nc;
    if s.exec_count[frame * nc + c] as usize != ctx.len {
        let detail = format!(
            "block {}: iteration {} stalled with {}/{} instructions executed",
            block.name(),
            s.frame_iter[frame * nc + c],
            s.exec_count[frame * nc + c],
            ctx.len
        );
        df_kill(s, c, DlpError::MalformedProgram { detail });
        return;
    }
    s.done_iters[c] += 1;
    let t = s.frame_last_tick[frame * nc + c];
    s.final_tick[c] = s.final_tick[c].max(t);
    if s.next_iter[c] < s.iterations[c] {
        let start = if ctx.inst_revit {
            s.stats[c].revitalizations += 1;
            df_reset_frame(ctx, block, s, c, frame, true);
            t + ctx.revitalize_delay
        } else {
            s.fetch_done[c] += ctx.per_fetch;
            s.stats[c].blocks_fetched += 1;
            df_reset_frame(ctx, block, s, c, frame, false);
            t.max(s.fetch_done[c])
        };
        df_seed_iteration(ctx, block, s, m, c, frame, start, s.next_iter[c], false);
        s.next_iter[c] += 1;
    }
}

/// Class `c` has drained every event: latch its final result (or the
/// scalar completion/fault error).
fn df_finalize(s: &mut BatchDataflowScratch, m: &mut Machine, c: usize, block: &DataflowBlock) {
    // A fault escalated by the very last event has no successor pop to
    // observe it — catch it before declaring the run complete.
    if let Some(fatal) = m.fault.fatal() {
        df_kill(s, c, fatal.to_error());
        return;
    }
    if s.done_iters[c] != s.iterations[c] {
        let detail = format!(
            "block {}: completed {}/{} iterations",
            block.name(),
            s.done_iters[c],
            s.iterations[c]
        );
        df_kill(s, c, DlpError::MalformedProgram { detail });
        return;
    }
    let mut stats = s.stats[c];
    stats.useful_ops += s.col_useful[c];
    stats.overhead_ops += s.col_overhead[c];
    stats.ticks = s.final_tick[c];
    let net = m.router.stats();
    stats.net_msgs = net.msgs;
    stats.net_hops = net.hops;
    stats.record_faults(m.fault.take_stats());
    s.results[c] = Some(Ok(stats));
    s.dead |= 1u64 << c;
}

/// Execute `block` on every machine in `machines` simultaneously, one
/// lane class per machine with its own `iterations[c]` count, and return
/// each class's result — bit-identical to running
/// [`Machine::run_dataflow_in`](crate::Machine::run_dataflow_in) on each
/// machine alone with its own count.
///
/// All machines must share one grid, timing model, and mechanism set
/// (they are variants of one prepared lowering: different workload
/// seeds, fault plans, attempt salts, or record counts). Iteration
/// counts may differ per class: a class whose tail is exhausted
/// finalizes and masks off while the survivors keep the shared schedule
/// (mask-padded tails). The caller guarantees the sharing; grids are
/// asserted.
///
/// # Panics
///
/// If `machines` is empty, longer than [`MAX_CLASSES`], a different
/// length than `iterations`, or the machines disagree on grid shape.
#[allow(clippy::too_many_lines)]
pub fn run_dataflow_batch_in(
    machines: &mut [Machine],
    block: &DataflowBlock,
    iterations: &[u64],
    arena: &mut EngineArena,
) -> Vec<Result<SimStats, DlpError>> {
    let nc = machines.len();
    assert!(
        (1..=MAX_CLASSES).contains(&nc),
        "batched dispatch takes 1..={MAX_CLASSES} lane classes, got {nc}"
    );
    assert_eq!(iterations.len(), nc, "one iteration count per lane class");
    assert!(
        machines.iter().all(|m| m.grid() == machines[0].grid()),
        "batched lane classes must share one grid shape"
    );
    if machines[0].mechanisms().local_pc {
        return (0..nc)
            .map(|_| {
                Err(DlpError::Unsupported {
                    what: "dataflow blocks on a machine configured for MIMD (local PCs)".into(),
                })
            })
            .collect();
    }
    let s = &mut arena.batch_dataflow;
    if let Err(e) = s.tables.build_tables(block, &machines[0]) {
        return (0..nc).map(|_| Err(e.clone())).collect();
    }

    let mech = machines[0].mechanisms();
    let params = *machines[0].params();
    let uniform_timing = machines.iter().all(|m| *m.params() == params);
    let inst_revit = mech.inst_revitalization;
    // Per-class frame counts: each class keeps exactly the frame window
    // its scalar run would use for its own iteration count.
    s.frames_of.clear();
    for &it in iterations {
        let f = if it == 0 {
            0
        } else if inst_revit {
            1
        } else {
            (params.fetch.baseline_frames.max(1) as usize).min(it as usize)
        };
        s.frames_of.push(f as u32);
    }
    let n_frames = s.frames_of.iter().copied().max().unwrap_or(0).max(1) as usize;
    let len = block.len();
    let ctx = DfCtx {
        nc,
        len,
        banks: params.core.reg_banks.max(1) as u16,
        reg_cols: machines[0].grid().cols(),
        op_revit: mech.operand_revitalization,
        inst_revit,
        per_fetch: if inst_revit {
            machines[0].fetch_ticks(len)
        } else {
            machines[0].fetch_ticks_baseline(len)
        },
        revitalize_delay: params.fetch.revitalize_delay,
        uniform_timing,
    };

    // Reset all recyclable state for `nc` classes and `n_frames` frames.
    s.events.clear();
    s.buf.reset(nc);
    s.rows.clear();
    s.free_rows.clear();
    s.ops_val.clear();
    s.ops_val.resize(n_frames * len * 3 * nc, Value::ZERO);
    s.ops_set.clear();
    s.ops_set.resize(n_frames * len * 3, 0);
    s.executed.clear();
    s.executed.resize(n_frames * len, 0);
    s.exec_count.clear();
    s.exec_count.resize(n_frames * nc, 0);
    s.pending.clear();
    s.pending.resize(n_frames * nc, 0);
    s.frame_last_tick.clear();
    s.frame_last_tick.resize(n_frames * nc, 0);
    s.frame_iter.clear();
    s.frame_iter.resize(n_frames * nc, 0);
    s.node_issue.clear();
    s.node_issue.resize(machines[0].grid().nodes() * nc, Throttle::new(1));
    let reads_per = params.core.reg_reads_per_bank_per_cycle.max(1);
    s.reg_bank_ports.clear();
    s.reg_bank_ports.resize(ctx.banks as usize * nc, Throttle::new(reads_per));
    s.iterations.clear();
    s.iterations.extend_from_slice(iterations);
    s.fetch_done.clear();
    s.fetch_done.resize(nc, 0);
    s.next_iter.clear();
    s.next_iter.resize(nc, 0);
    s.done_iters.clear();
    s.done_iters.resize(nc, 0);
    s.final_tick.clear();
    s.final_tick.resize(nc, 0);
    s.live.clear();
    s.live.resize(nc, 0);
    s.col_useful.clear();
    s.col_useful.resize(nc, 0);
    s.col_overhead.clear();
    s.col_overhead.resize(nc, 0);
    s.lane_l.clear();
    s.lane_l.resize(nc, Value::ZERO);
    s.lane_r.clear();
    s.lane_r.resize(nc, Value::ZERO);
    s.lane_p.clear();
    s.lane_p.resize(nc, Value::ZERO);
    s.lane_v.clear();
    s.lane_v.resize(nc, Value::ZERO);
    s.stats.clear();
    s.results.clear();
    s.results.resize(nc, None);
    s.dead = 0;

    for (c, m) in machines.iter_mut().enumerate() {
        let mut base = m.begin_run();
        base.iterations = iterations[c];
        s.stats.push(base);
    }
    // Zero-iteration tails latch the scalar early return (setup ticks
    // only) before any seeding can touch their stats.
    for c in 0..nc {
        if iterations[c] == 0 {
            s.results[c] = Some(Ok(s.stats[c]));
            s.dead |= 1u64 << c;
        }
    }

    // Hoisted divergence guards: the fast path in the event loop checks
    // one uniform watchdog bound and one armed-fault mask instead of
    // walking classes. (`fatal()` can only ever be `Some` for classes
    // whose injector holds a real plan.)
    let wd_min = machines.iter().map(|m| m.watchdog_ticks).min().unwrap_or(0);
    let mut fault_armed = 0u64;
    for (c, m) in machines.iter().enumerate() {
        if !m.fault.plan().is_none() {
            fault_armed |= 1u64 << c;
        }
    }

    // Seed the initial frames through the (pipelined) fetch engine.
    // Classes join only the frames inside their own window; seed ticks
    // may differ per class (staging under faults), which the merge
    // buffer handles like any divergence.
    for c in 0..nc {
        s.fetch_done[c] = s.stats[c].ticks + params.fetch.map_overhead;
    }
    for frame in 0..n_frames {
        for c in 0..nc {
            if (frame as u32) < s.frames_of[c] {
                s.fetch_done[c] += ctx.per_fetch;
                s.stats[c].blocks_fetched += 1;
                df_seed_iteration(
                    ctx,
                    block,
                    s,
                    &mut machines[c],
                    c,
                    frame,
                    s.fetch_done[c],
                    frame as u64,
                    true,
                );
                s.next_iter[c] = frame as u64 + 1;
            }
        }
    }
    for c in 0..nc {
        s.final_tick[c] = s.fetch_done[c];
    }
    df_flush(s);
    // A class whose seeding produced no events (e.g. an all-Nop block)
    // finalizes immediately, exactly like the scalar empty event loop.
    for c in 0..nc {
        if s.live[c] == 0 && s.dead & (1u64 << c) == 0 {
            df_finalize(s, &mut machines[c], c, block);
        }
    }

    // Event loop across all in-flight frames and classes.
    while let Some((tick, (), ev)) = s.events.pop() {
        let alive = ev.mask & !s.dead;
        if alive == 0 {
            continue;
        }
        let frame = ev.frame as usize;

        // Divergence fixup, hoisted: one uniform check covers every
        // class until a bound is actually crossed; only then does the
        // slow path walk classes in ascending index (scalar error
        // order: watchdog, then latched fault).
        let proc = if tick <= wd_min && alive & fault_armed == 0 {
            alive
        } else {
            let mut proc: u64 = 0;
            let mut bits = alive;
            while bits != 0 {
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if tick > machines[c].watchdog_ticks {
                    let context = format!(
                        "dataflow block '{}' ({}/{} iterations done)",
                        block.name(),
                        s.done_iters[c],
                        s.iterations[c]
                    );
                    df_kill(s, c, DlpError::Watchdog { ticks: tick, context });
                    continue;
                }
                if let Some(fatal) = machines[c].fault.fatal() {
                    df_kill(s, c, fatal.to_error());
                    continue;
                }
                proc |= 1u64 << c;
            }
            proc
        };

        // Bookkeeping — branch-free word-at-a-time passes.
        let fbase = frame * nc;
        mask::simd_sub_one_u32(&mut s.pending[fbase..fbase + nc], proc);
        mask::simd_max_tick(&mut s.frame_last_tick[fbase..fbase + nc], tick, proc);

        if ev.inst != NO_INST {
            let i = ev.inst as usize;
            let b3 = (frame * len + i) * 3;
            let slot = b3 + ev.port as usize;
            // Latch the operand for every processing class (masked copy
            // over contiguous per-class strides).
            let rbase = ev.row as usize * nc;
            let vbase = slot * nc;
            mask::simd_latch_lanes(&mut s.ops_val[vbase..vbase + nc], &s.rows[rbase..rbase + nc], proc);
            s.ops_set[slot] |= proc;
            // Readiness for all classes at once: one AND tree.
            let req = s.tables.required[i];
            let m0 = if req[0] { s.ops_set[b3] } else { !0u64 };
            let m1 = if req[1] { s.ops_set[b3 + 1] } else { !0u64 };
            let m2 = if req[2] { s.ops_set[b3 + 2] } else { !0u64 };
            let mut ready = proc & !s.executed[frame * len + i] & m0 & m1 & m2;
            if ready.count_ones() >= 2
                && ctx.uniform_timing
                && df_is_eval_op(block.insts()[i].op)
            {
                df_execute_lanes(ctx, block, s, machines, frame, i, tick, ready);
                ready = 0;
            }
            while ready != 0 {
                let c = ready.trailing_zeros() as usize;
                ready &= ready - 1;
                df_execute(ctx, block, s, &mut machines[c], c, frame, i, tick);
            }
        }

        // Iteration-completion checks, ascending class index.
        let mut bits = proc;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if s.pending[fbase + c] == 0 {
                df_complete_iteration(ctx, block, s, &mut machines[c], c, frame);
            }
        }

        if ev.row != NO_ROW {
            s.free_rows.push(ev.row);
        }
        df_flush(s);

        // Consume the event; classes that drained finalize.
        let mut bits = alive & !s.dead;
        while bits != 0 {
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            s.live[c] -= 1;
            if s.live[c] == 0 {
                df_finalize(s, &mut machines[c], c, block);
            }
        }
    }

    s.results
        .iter_mut()
        .map(|r| {
            r.take().unwrap_or_else(|| {
                Err(DlpError::Internal {
                    detail: "batched dataflow engine left a lane class unresolved".into(),
                })
            })
        })
        .collect()
}
